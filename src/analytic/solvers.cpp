#include "analytic/solvers.hpp"

#include <cmath>
#include <deque>

#include "analytic/fmt2ctmc.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "smc/run_control.hpp"
#include "util/error.hpp"

namespace fmtree::analytic {

namespace {

/// Shared per-sweep telemetry of the iterative solvers: an iteration/residual
/// progress snapshot plus a cooperative-stop poll, every `kStride` sweeps.
/// Pure observation except for the stop, which raises ResourceLimitError
/// carrying the progress made — results are never silently partial.
constexpr std::size_t kStride = 256;

void poll_iteration(const SolverOptions& opts, const char* what, std::size_t it,
                    double residual, std::size_t states) {
  if ((it + 1) % kStride != 0) return;
  if (opts.control != nullptr &&
      opts.control->should_stop(0) != smc::StopReason::None) {
    throw ResourceLimitError(std::string(what) + " interrupted",
                             {.iterations = it + 1, .residual = residual,
                              .states = states});
  }
  if (obs::ProgressReporter* progress = opts.telemetry.progress;
      progress != nullptr && progress->due()) {
    obs::Progress p;
    p.phase = "solve";
    p.done = it + 1;
    p.total = opts.max_iterations;
    p.residual = residual;
    progress->update(p);
  }
}

void record_convergence(const SolverOptions& opts, std::size_t iterations,
                        double residual) {
  if (obs::MetricsRegistry* metrics = opts.telemetry.metrics) {
    metrics->add(metrics->counter("solver.iterations"), iterations);
    metrics->set(metrics->gauge("solver.residual"), residual);
  }
}

}  // namespace

std::vector<double> steady_state(const Ctmc& chain, const SolverOptions& opts) {
  auto solve_span = obs::maybe_span(opts.telemetry.tracer, "solve");
  const std::size_t n = chain.num_states();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  double delta = 0;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    chain.uniformized_step(pi, next);
    delta = 0;
    for (std::size_t s = 0; s < n; ++s)
      delta = std::max(delta, std::fabs(next[s] - pi[s]));
    pi.swap(next);
    if (delta < opts.tolerance) {
      double total = 0;  // normalize away accumulated rounding
      for (double p : pi) total += p;
      for (double& p : pi) p /= total;
      record_convergence(opts, it + 1, delta);
      return pi;
    }
    poll_iteration(opts, "steady_state power iteration", it, delta, n);
  }
  throw ResourceLimitError(
      "steady_state power iteration failed to converge",
      {.iterations = opts.max_iterations, .residual = delta, .states = n});
}

double mean_time_to_absorption(const Ctmc& chain, const std::vector<double>& initial,
                               const std::vector<bool>& absorbing,
                               const SolverOptions& opts) {
  const std::size_t n = chain.num_states();
  if (initial.size() != n || absorbing.size() != n)
    throw DomainError("vector size does not match state count");
  auto solve_span = obs::maybe_span(opts.telemetry.tracer, "solve");

  // Group edges per source and build reverse adjacency for reachability.
  std::vector<std::vector<CtmcEdge>> out(n);
  std::vector<std::vector<State>> reverse(n);
  for (std::size_t i = 0; i < chain.num_transitions(); ++i) {
    const CtmcEdge e = chain.edge(i);
    out[e.from].push_back(e);
    reverse[e.to].push_back(e.from);
  }

  // Any transient state (with initial mass) that cannot reach the absorbing
  // set makes the expectation infinite.
  std::vector<bool> can_reach(n, false);
  std::deque<State> queue;
  for (State s = 0; s < n; ++s) {
    if (absorbing[s]) {
      can_reach[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const State s = queue.front();
    queue.pop_front();
    for (State p : reverse[s]) {
      if (!can_reach[p]) {
        can_reach[p] = true;
        queue.push_back(p);
      }
    }
  }
  for (State s = 0; s < n; ++s) {
    if (!absorbing[s] && !can_reach[s] && initial[s] > 0)
      throw DomainError("initial state cannot reach the absorbing set: MTTF infinite");
  }

  // Hitting-time equations, h = 0 on the absorbing set:
  //   h_s = (1 + sum_{s->s'} rate * h_{s'}) / exit_s   for transient s.
  // Gauss–Seidel sweeps converge monotonically from h = 0.
  std::vector<double> h(n, 0.0);
  double delta = 0;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    delta = 0;
    for (State s = 0; s < n; ++s) {
      if (absorbing[s] || !can_reach[s]) continue;
      const double exit = chain.exit_rate(s);
      if (exit <= 0)
        throw DomainError("transient state with zero exit rate: MTTF infinite");
      double sum_rate_h = 0;
      for (const CtmcEdge& e : out[s])
        if (!absorbing[e.to]) sum_rate_h += e.rate * h[e.to];
      const double fresh = (1.0 + sum_rate_h) / exit;
      delta = std::max(delta, std::fabs(fresh - h[s]));
      h[s] = fresh;
    }
    if (delta < opts.tolerance) {
      double mttf = 0;
      for (State s = 0; s < n; ++s) mttf += initial[s] * h[s];
      record_convergence(opts, it + 1, delta);
      return mttf;
    }
    poll_iteration(opts, "mean_time_to_absorption", it, delta, n);
  }
  throw ResourceLimitError(
      "mean_time_to_absorption failed to converge",
      {.iterations = opts.max_iterations, .residual = delta, .states = n});
}

double exact_mttf(const fmt::FaultMaintenanceTree& model, std::size_t max_states,
                  const SolverOptions& opts) {
  auto build_span = obs::maybe_span(opts.telemetry.tracer, "build");
  const MarkovFmt m = fmt_to_ctmc(model, FailureTreatment::Absorbing, max_states);
  build_span.close();
  if (obs::MetricsRegistry* metrics = opts.telemetry.metrics)
    metrics->set(metrics->gauge("solver.states"),
                 static_cast<double>(m.chain.num_states()));
  return mean_time_to_absorption(m.chain, m.initial, m.failed, opts);
}

}  // namespace fmtree::analytic
