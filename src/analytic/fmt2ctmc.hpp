// Exact analysis of Markovian FMT submodels via CTMC construction.
//
// Applicable when every degradation phase is exponential and there are no
// periodic maintenance modules (their deterministic clocks leave the CTMC
// class — the reason the general FMT semantics needs simulation). The CTMC
// state is the phase vector of all leaves; RDEP acceleration multiplies
// phase rates in states where the trigger holds.
#pragma once

#include <cstdint>
#include <vector>

#include "analytic/ctmc.hpp"
#include "fmt/fmtree.hpp"

namespace fmtree::analytic {

/// A CTMC view of an FMT plus the vectors needed for the two exact queries.
struct MarkovFmt {
  Ctmc chain;
  std::vector<double> initial;            ///< point mass on the all-new state
  std::vector<bool> failed;               ///< states where the top event holds
  std::vector<double> failure_intensity;  ///< rate of failure transitions (renewal mode)
  std::size_t states = 0;
};

/// How system failure is treated in the CTMC.
enum class FailureTreatment {
  /// Failure states are absorbing: P(in a failed state at t) = unreliability.
  Absorbing,
  /// Failure transitions are redirected to the all-new state, mirroring
  /// corrective renewal with zero delay; the failure intensity reward then
  /// integrates to E[#failures in [0,t]].
  Renewal,
};

/// Builds the CTMC. Throws UnsupportedModelError if the model has periodic
/// maintenance or non-exponential phases, and ResourceLimitError (carrying
/// the number of states built) if the reachable state space exceeds
/// `max_states` — callers can catch the latter and fall back to simulation.
MarkovFmt fmt_to_ctmc(const fmt::FaultMaintenanceTree& model, FailureTreatment treatment,
                      std::size_t max_states = 1u << 20);

/// Exact P(system failure occurs in [0, t]) ignoring repair of failures.
double exact_unreliability(const fmt::FaultMaintenanceTree& model, double t,
                           std::size_t max_states = 1u << 20);

/// Exact E[#system failures in [0, t]] under corrective renewal with zero
/// delay. Requires model.corrective() enabled with delay == 0 so that the
/// simulator and this oracle implement the same semantics.
double exact_expected_failures(const fmt::FaultMaintenanceTree& model, double t,
                               std::size_t max_states = 1u << 20);

}  // namespace fmtree::analytic
