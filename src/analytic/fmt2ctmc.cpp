#include "analytic/fmt2ctmc.hpp"

#include <deque>
#include <unordered_map>
#include <variant>

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace fmtree::analytic {

namespace {

/// Mixed-radix packing of a phase vector into a 64-bit key.
class PhaseCodec {
public:
  explicit PhaseCodec(const fmt::FaultMaintenanceTree& model) {
    radix_.reserve(model.num_ebes());
    std::uint64_t capacity = 1;
    for (const fmt::ExtendedBasicEvent& e : model.ebes()) {
      const auto digits = static_cast<std::uint64_t>(e.degradation.phases()) + 1;
      radix_.push_back(digits);
      if (capacity > (~0ULL) / digits)
        throw UnsupportedModelError("phase space exceeds 64-bit encoding");
      capacity *= digits;
    }
  }

  std::uint64_t encode(const std::vector<int>& phases) const {
    std::uint64_t key = 0;
    for (std::size_t i = radix_.size(); i-- > 0;)
      key = key * radix_[i] + static_cast<std::uint64_t>(phases[i] - 1);
    return key;
  }

  std::vector<int> decode(std::uint64_t key) const {
    std::vector<int> phases(radix_.size());
    for (std::size_t i = 0; i < radix_.size(); ++i) {
      phases[i] = static_cast<int>(key % radix_[i]) + 1;
      key /= radix_[i];
    }
    return phases;
  }

private:
  std::vector<std::uint64_t> radix_;
};

void require_markovian_structure(const fmt::FaultMaintenanceTree& model) {
  if (!model.inspections().empty() || !model.replacements().empty())
    throw UnsupportedModelError(
        "periodic maintenance clocks are deterministic; the model is not a CTMC "
        "(use the simulator)");
  for (const fmt::ExtendedBasicEvent& e : model.ebes()) {
    if (!e.degradation.all_phases_exponential())
      throw UnsupportedModelError("leaf '" + e.name +
                                  "' has non-exponential phases; not a CTMC");
  }
}

double phase_rate(const fmt::DegradationModel& deg, int phase) {
  return std::get<Exponential>(deg.sojourn(phase).as_variant()).rate;
}

}  // namespace

MarkovFmt fmt_to_ctmc(const fmt::FaultMaintenanceTree& model, FailureTreatment treatment,
                      std::size_t max_states) {
  // Fault site for the allocation-heavy CTMC construction: error mode stands
  // in for a bad_alloc/state-explosion mid-build.
  (void)fault::fault_point("solver.build");
  model.validate();
  require_markovian_structure(model);
  const ft::FaultTree& structure = model.structure();
  const std::size_t num_leaves = model.num_ebes();
  const PhaseCodec codec(model);

  const auto leaf_failed_vector = [&](const std::vector<int>& phases) {
    std::vector<bool> failed(num_leaves);
    for (std::size_t i = 0; i < num_leaves; ++i)
      failed[i] = phases[i] > model.ebes()[i].degradation.phases();
    return failed;
  };

  const auto is_top_failed = [&](const std::vector<int>& phases) {
    return structure.evaluate_top(leaf_failed_vector(phases));
  };

  const auto accel_for = [&](const std::vector<int>& phases, std::size_t leaf) {
    double factor = 1.0;
    if (model.rdeps().empty() && model.spares().empty()) return factor;
    const std::vector<bool> failed = leaf_failed_vector(phases);
    // Spare dormancy: a non-active pool member degrades at `dormancy` rate.
    for (const fmt::SpareSpec& spec : model.spares()) {
      bool covers = false;
      for (fmt::NodeId c : spec.children)
        if (model.ebe_index(c) == leaf) covers = true;
      if (!covers) continue;
      for (fmt::NodeId c : spec.children) {
        const std::size_t child = model.ebe_index(c);
        if (failed[child]) continue;
        if (child != leaf) factor *= spec.dormancy;
        break;  // lowest-index live child is the active one
      }
    }
    for (const fmt::RateDependency& r : model.rdeps()) {
      bool covers = false;
      for (fmt::NodeId d : r.dependents)
        if (model.ebe_index(d) == leaf) covers = true;
      if (!covers) continue;
      const bool active = r.trigger_phase == 0
                              ? structure.evaluate(r.trigger, failed)
                              : phases[model.ebe_index(r.trigger)] >= r.trigger_phase;
      if (active) factor *= r.factor;
    }
    return factor;
  };

  // FDEP closure: failed triggers force dependents to the failed phase;
  // iterate to the fixpoint so every stored state is closed.
  const auto apply_fdep_closure = [&](std::vector<int>& phases) {
    if (model.fdeps().empty()) return;
    bool changed = true;
    while (changed) {
      changed = false;
      const std::vector<bool> failed = leaf_failed_vector(phases);
      for (const fmt::FunctionalDependency& dep : model.fdeps()) {
        if (!structure.evaluate(dep.trigger, failed)) continue;
        for (fmt::NodeId d : dep.dependents) {
          const std::size_t leaf = model.ebe_index(d);
          const int failed_phase = model.ebes()[leaf].degradation.phases() + 1;
          if (phases[leaf] != failed_phase) {
            phases[leaf] = failed_phase;
            changed = true;
          }
        }
      }
    }
  };

  // ---- BFS over reachable phase vectors -------------------------------------
  struct Edge {
    State from;
    std::uint64_t to_key;
    double rate;
    bool is_failure_edge;
  };
  std::unordered_map<std::uint64_t, State> index;
  std::deque<std::uint64_t> frontier;
  std::vector<std::uint64_t> keys;
  std::vector<Edge> edges;

  std::vector<int> initial_phases(num_leaves, 1);
  apply_fdep_closure(initial_phases);
  if (is_top_failed(initial_phases))
    throw UnsupportedModelError("top event already holds in the all-new state");
  const std::uint64_t initial_key = codec.encode(initial_phases);
  index.emplace(initial_key, 0);
  keys.push_back(initial_key);
  frontier.push_back(initial_key);

  const auto intern = [&](std::uint64_t key) -> State {
    auto [it, inserted] = index.try_emplace(key, static_cast<State>(keys.size()));
    if (inserted) {
      if (keys.size() >= max_states)
        throw ResourceLimitError("reachable state space exceeds max_states (" +
                                     std::to_string(max_states) + ")",
                                 {.states = keys.size()});
      keys.push_back(key);
      frontier.push_back(key);
    }
    return it->second;
  };

  std::vector<bool> state_failed{false};
  while (!frontier.empty()) {
    const std::uint64_t key = frontier.front();
    frontier.pop_front();
    const State s = index.at(key);
    const std::vector<int> phases = codec.decode(key);
    const bool failed_here = is_top_failed(phases);
    if (state_failed.size() <= s) state_failed.resize(s + 1, false);
    state_failed[s] = failed_here;
    if (failed_here && treatment == FailureTreatment::Absorbing)
      continue;  // absorbing: no outgoing edges explored
    for (std::size_t leaf = 0; leaf < num_leaves; ++leaf) {
      const fmt::DegradationModel& deg = model.ebes()[leaf].degradation;
      if (phases[leaf] > deg.phases()) continue;  // leaf already failed
      const double rate = phase_rate(deg, phases[leaf]) * accel_for(phases, leaf);
      if (rate == 0) continue;  // frozen (cold spare): no transition
      std::vector<int> next = phases;
      ++next[leaf];
      apply_fdep_closure(next);
      const bool causes_failure = !failed_here && is_top_failed(next);
      if (treatment == FailureTreatment::Renewal && causes_failure) {
        edges.push_back(Edge{s, initial_key, rate, true});
      } else {
        edges.push_back(Edge{s, codec.encode(next), rate, causes_failure});
      }
    }
    // Intern targets now that this state's edges are final.
    for (std::size_t e = edges.size(); e-- > 0 && edges[e].from == s;)
      (void)intern(edges[e].to_key);
  }

  MarkovFmt out{Ctmc(keys.size()), {}, {}, {}, keys.size()};
  out.initial.assign(keys.size(), 0.0);
  out.initial[0] = 1.0;
  out.failed.assign(keys.size(), false);
  out.failure_intensity.assign(keys.size(), 0.0);
  for (std::size_t s = 0; s < keys.size() && s < state_failed.size(); ++s)
    out.failed[s] = state_failed[s];
  for (const Edge& e : edges) {
    const State to = index.at(e.to_key);
    if (e.from != to)  // renewal self-loop (1-leaf system) contributes only reward
      out.chain.add_transition(e.from, to, e.rate);
    if (e.is_failure_edge) out.failure_intensity[e.from] += e.rate;
  }
  return out;
}

double exact_unreliability(const fmt::FaultMaintenanceTree& model, double t,
                           std::size_t max_states) {
  const MarkovFmt m = fmt_to_ctmc(model, FailureTreatment::Absorbing, max_states);
  return m.chain.transient_probability(m.initial, m.failed, t);
}

double exact_expected_failures(const fmt::FaultMaintenanceTree& model, double t,
                               std::size_t max_states) {
  const fmt::CorrectivePolicy& c = model.corrective();
  if (!c.enabled || c.delay != 0.0)
    throw UnsupportedModelError(
        "exact_expected_failures models corrective renewal with zero delay; "
        "enable corrective maintenance with delay=0");
  const MarkovFmt m = fmt_to_ctmc(model, FailureTreatment::Renewal, max_states);
  return m.chain.accumulated_reward(m.initial, m.failure_intensity, t);
}

}  // namespace fmtree::analytic
