// Linear-algebraic CTMC queries complementing transient uniformization:
// stationary distributions and expected hitting times, plus the exact
// mean-time-to-failure oracle for Markovian FMTs.
#pragma once

#include "analytic/ctmc.hpp"
#include "fmt/fmtree.hpp"
#include "fmtree/run_settings.hpp"

namespace fmtree::analytic {

/// Iterative-solver options. Embeds fmtree::RunSettings: the solvers honor
/// `control` (polled every few hundred sweeps; an interrupt or expired
/// deadline raises ResourceLimitError carrying the progress made) and
/// `telemetry` (iteration/residual progress snapshots, solver.* metrics,
/// spans); horizon/seed/threads do not apply to the linear solvers.
struct SolverOptions : fmtree::RunSettings {
  double tolerance = 1e-12;      ///< max-norm change per sweep
  std::size_t max_iterations = 200000;
};

/// Stationary distribution pi with pi Q = 0, sum(pi) = 1, computed by power
/// iteration on the uniformized DTMC. For an irreducible chain this is the
/// unique long-run distribution; for reducible chains it is the limit from
/// the uniform initial distribution. Throws DomainError on non-convergence.
std::vector<double> steady_state(const Ctmc& chain, const SolverOptions& opts = {});

/// Expected time to reach the `absorbing` set from `initial`
/// (E[inf{t : X_t in absorbing}]), by Gauss–Seidel on the hitting-time
/// equations. Throws DomainError if a non-absorbing state cannot reach the
/// set (infinite expectation) or on non-convergence.
double mean_time_to_absorption(const Ctmc& chain, const std::vector<double>& initial,
                               const std::vector<bool>& absorbing,
                               const SolverOptions& opts = {});

/// Exact mean time to first system failure of a Markovian FMT (no periodic
/// maintenance, exponential phases). The oracle for smc::mean_time_to_failure.
double exact_mttf(const fmt::FaultMaintenanceTree& model,
                  std::size_t max_states = 1u << 20, const SolverOptions& opts = {});

}  // namespace fmtree::analytic
