#include "analytic/ctmc.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace fmtree::analytic {

Ctmc::Ctmc(std::size_t num_states) : num_states_(num_states), exit_(num_states, 0.0) {
  if (num_states == 0) throw DomainError("CTMC needs at least one state");
}

void Ctmc::add_transition(State from, State to, double rate) {
  if (from >= num_states_ || to >= num_states_)
    throw DomainError("CTMC transition endpoint out of range");
  if (from == to) throw DomainError("CTMC self-loops are not allowed");
  if (!(rate > 0) || !std::isfinite(rate))
    throw DomainError("CTMC transition rate must be positive and finite");
  from_.push_back(from);
  to_.push_back(to);
  rate_.push_back(rate);
  exit_[from] += rate;
}

double Ctmc::exit_rate(State s) const {
  if (s >= num_states_) throw DomainError("state out of range");
  return exit_[s];
}

CtmcEdge Ctmc::edge(std::size_t i) const {
  if (i >= from_.size()) throw DomainError("transition index out of range");
  return CtmcEdge{from_[i], to_[i], rate_[i]};
}

void Ctmc::uniformized_step(const std::vector<double>& v,
                            std::vector<double>& out) const {
  if (v.size() != num_states_)
    throw DomainError("vector size does not match state count");
  dtmc_step(v, out, uniformization_rate());
}

double Ctmc::uniformization_rate() const {
  const double max_exit = *std::max_element(exit_.begin(), exit_.end());
  // A margin above the max exit rate keeps the DTMC aperiodic; 1.02 is
  // conventional. Guard against all-absorbing chains (max_exit == 0).
  return max_exit > 0 ? 1.02 * max_exit : 1.0;
}

void Ctmc::dtmc_step(const std::vector<double>& v, std::vector<double>& out,
                     double lambda) const {
  out.assign(num_states_, 0.0);
  // P = I + Q/lambda: stay with prob 1 - exit/lambda, move with rate/lambda.
  for (std::size_t s = 0; s < num_states_; ++s)
    out[s] = v[s] * (1.0 - exit_[s] / lambda);
  for (std::size_t e = 0; e < from_.size(); ++e)
    out[to_[e]] += v[from_[e]] * (rate_[e] / lambda);
}

std::vector<double> poisson_weights(double lambda_t, double epsilon,
                                    std::uint64_t max_terms) {
  if (lambda_t < 0 || !std::isfinite(lambda_t))
    throw DomainError("poisson_weights requires finite lambda_t >= 0");
  if (lambda_t == 0) return {1.0};
  // Left/right truncation around the mode, computed in log space.
  const auto mode = static_cast<std::int64_t>(std::floor(lambda_t));
  const double log_pmf_mode = static_cast<double>(mode) * std::log(lambda_t) -
                              lambda_t - std::lgamma(static_cast<double>(mode) + 1.0);
  // Find right bound.
  std::vector<double> right;  // pmf from mode upward
  double log_p = log_pmf_mode;
  for (std::int64_t k = mode;; ++k) {
    const double p = std::exp(log_p);
    right.push_back(p);
    if (p < epsilon && k > mode + 2) break;
    if (static_cast<std::uint64_t>(k - mode) > max_terms)
      throw ResourceLimitError(
          "poisson series failed to converge",
          {.iterations = static_cast<std::uint64_t>(k - mode), .residual = p});
    log_p += std::log(lambda_t) - std::log(static_cast<double>(k) + 1.0);
  }
  // Left side from mode-1 down to 0 (or until negligible).
  std::vector<double> left;  // pmf from mode-1 downward
  log_p = log_pmf_mode;
  for (std::int64_t k = mode - 1; k >= 0; --k) {
    log_p += std::log(static_cast<double>(k) + 1.0) - std::log(lambda_t);
    const double p = std::exp(log_p);
    left.push_back(p);
    if (p < epsilon && static_cast<std::int64_t>(left.size()) > 2) break;
  }
  const auto first_k = mode - static_cast<std::int64_t>(left.size());
  std::vector<double> pmf(static_cast<std::size_t>(first_k), 0.0);
  pmf.reserve(static_cast<std::size_t>(first_k) + left.size() + right.size());
  for (auto it = left.rbegin(); it != left.rend(); ++it) pmf.push_back(*it);
  for (double p : right) pmf.push_back(p);
  // Normalize the truncated mass to 1 to keep distributions stochastic.
  double total = 0;
  for (double p : pmf) total += p;
  if (total > 0)
    for (double& p : pmf) p /= total;
  return pmf;
}

std::vector<double> Ctmc::transient(const std::vector<double>& initial, double t,
                                    double epsilon) const {
  if (initial.size() != num_states_)
    throw DomainError("initial distribution size does not match state count");
  if (t < 0) throw DomainError("time must be >= 0");
  if (t == 0) return initial;
  const double lambda = uniformization_rate();
  const std::vector<double> pmf = poisson_weights(lambda * t, epsilon);

  std::vector<double> v = initial;
  std::vector<double> next(num_states_);
  std::vector<double> result(num_states_, 0.0);
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    if (pmf[k] > 0)
      for (std::size_t s = 0; s < num_states_; ++s) result[s] += pmf[k] * v[s];
    if (k + 1 < pmf.size()) {
      dtmc_step(v, next, lambda);
      v.swap(next);
    }
  }
  return result;
}

double Ctmc::transient_probability(const std::vector<double>& initial,
                                   const std::vector<bool>& targets, double t,
                                   double epsilon) const {
  if (targets.size() != num_states_)
    throw DomainError("target vector size does not match state count");
  const std::vector<double> pi = transient(initial, t, epsilon);
  double p = 0;
  for (std::size_t s = 0; s < num_states_; ++s)
    if (targets[s]) p += pi[s];
  return p;
}

double Ctmc::accumulated_reward(const std::vector<double>& initial,
                                const std::vector<double>& reward, double t,
                                double epsilon) const {
  if (initial.size() != num_states_ || reward.size() != num_states_)
    throw DomainError("vector size does not match state count");
  if (t < 0) throw DomainError("time must be >= 0");
  if (t == 0) return 0.0;
  const double lambda = uniformization_rate();
  const std::vector<double> pmf = poisson_weights(lambda * t, epsilon);

  // integral_0^t pois(k; lambda u) du = P(Poisson(lambda t) >= k+1) / lambda
  //                                   = (1 - F(k)) / lambda.
  std::vector<double> tail(pmf.size());
  double cum = 0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    cum += pmf[k];
    tail[k] = std::max(0.0, 1.0 - cum);
  }

  std::vector<double> v = initial;
  std::vector<double> next(num_states_);
  double acc = 0;
  for (std::size_t k = 0; k < pmf.size(); ++k) {
    double rv = 0;
    for (std::size_t s = 0; s < num_states_; ++s) rv += reward[s] * v[s];
    acc += tail[k] / lambda * rv;
    if (k + 1 < pmf.size()) {
      dtmc_step(v, next, lambda);
      v.swap(next);
    }
  }
  return acc;
}

}  // namespace fmtree::analytic
