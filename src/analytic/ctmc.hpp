// Sparse continuous-time Markov chains with transient analysis by
// uniformization (Jensen's method). Serves as the exact oracle against which
// the statistical model checker is validated on Markovian submodels.
#pragma once

#include <cstdint>
#include <vector>

namespace fmtree::analytic {

using State = std::uint32_t;

/// One transition of the sparse generator.
struct CtmcEdge {
  State from = 0;
  State to = 0;
  double rate = 0.0;
};

class Ctmc {
public:
  explicit Ctmc(std::size_t num_states);

  /// Adds a transition. Self-loops are rejected; parallel transitions
  /// accumulate.
  void add_transition(State from, State to, double rate);

  std::size_t num_states() const noexcept { return num_states_; }
  std::size_t num_transitions() const noexcept { return from_.size(); }

  /// Total exit rate of a state.
  double exit_rate(State s) const;

  /// The i-th transition (insertion order). Used by the linear solvers.
  CtmcEdge edge(std::size_t i) const;

  /// One step of the uniformized DTMC (P = I + Q/lambda with the chain's
  /// own uniformization rate): out = v P. Exposed for stationary analysis.
  void uniformized_step(const std::vector<double>& v, std::vector<double>& out) const;

  /// Transient state distribution pi(t) from `initial`, truncating the
  /// Poisson series once the tail mass is below `epsilon`.
  std::vector<double> transient(const std::vector<double>& initial, double t,
                                double epsilon = 1e-12) const;

  /// P(in one of `targets` at time t).
  double transient_probability(const std::vector<double>& initial,
                               const std::vector<bool>& targets, double t,
                               double epsilon = 1e-12) const;

  /// Expected accumulated reward integral_0^t reward . pi(u) du for a
  /// state-indexed reward-rate vector (e.g. failure intensity -> expected
  /// number of failures; indicator of up states -> expected uptime).
  double accumulated_reward(const std::vector<double>& initial,
                            const std::vector<double>& reward, double t,
                            double epsilon = 1e-12) const;

private:
  /// One step of the uniformized DTMC: out = v P with P = I + Q/lambda.
  void dtmc_step(const std::vector<double>& v, std::vector<double>& out,
                 double lambda) const;
  double uniformization_rate() const;

  std::size_t num_states_;
  std::vector<State> from_;
  std::vector<State> to_;
  std::vector<double> rate_;
  std::vector<double> exit_;
};

/// Poisson(lambda_t) probabilities pmf[0..K] with K chosen so the truncated
/// tail is below epsilon; numerically stable for large lambda_t (computed
/// around the mode in log space). Exposed for tests. Throws
/// ResourceLimitError (carrying the number of terms expanded) if the series
/// has not converged after `max_terms` terms past the mode.
std::vector<double> poisson_weights(double lambda_t, double epsilon,
                                    std::uint64_t max_terms = 20'000'000);

}  // namespace fmtree::analytic
