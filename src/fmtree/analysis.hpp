// The single-header public facade of the library: one `fmtree::Analysis`
// session object owning the model, the settings and the telemetry sinks, so
// a complete study — load, configure, analyse, export telemetry — reads as a
// handful of chained calls instead of a tour of the layer headers:
//
//   auto study = fmtree::Analysis::from_file("models/ei_joint.fmt")
//                    .horizon(20.0).trajectories(20000).seed(1);
//   const smc::KpiReport k = study.kpis();
//
// Everything the facade returns is the exact type the underlying layer
// produces (smc::KpiReport, smc::CurvePoint, maintenance::SweepResult, ...),
// so code can start on the facade and drop down a layer without rewriting.
//
// Telemetry sinks are opt-in and owned by the session: enable_metrics() /
// enable_tracing() / on_progress() attach them to every subsequent analysis
// call, and metrics_json() / trace_json() / chrome_trace() export what they
// collected. Enabling telemetry changes no analysis output bit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analytic/solvers.hpp"
#include "batch/result_cache.hpp"
#include "batch/sweep.hpp"
#include "fleet/fleet.hpp"
#include "fmt/fmtree.hpp"
#include "maintenance/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "serve/session.hpp"
#include "smc/kpi.hpp"

namespace fmtree {

/// A pending asynchronous kpis() computation (Analysis::submit()). Move-only.
/// The handle owns one serve::Ticket on the session's embedded analysis
/// service; destroying it before wait() cancels the caller's interest (the
/// computation stops at the next trajectory boundary unless another handle
/// shares it through the cache-key dedup). An unresolved handle must not
/// outlive its Analysis; once wait() has returned the handle is detached
/// from the service and may be kept or destroyed freely.
class PendingKpis {
public:
  PendingKpis() = default;
  PendingKpis(PendingKpis&&) noexcept = default;
  PendingKpis& operator=(PendingKpis&&) noexcept = default;

  /// Non-blocking: true once the result (or failure) is available.
  bool poll();
  /// Blocks up to `seconds`; returns poll().
  bool wait_for(double seconds);
  /// Blocks until resolved and returns the report — bit-identical to what
  /// the blocking kpis() would have produced. Throws Error when the job
  /// failed, was cancelled, or the service stopped first. Idempotent.
  smc::KpiReport wait();
  /// Detaches from the computation (see class comment). Idempotent.
  void cancel();

private:
  friend class Analysis;
  serve::Ticket ticket_;
  std::optional<serve::Response> response_;
};

/// An analysis session over one fault maintenance tree.
///
/// Move-only (it owns the telemetry sinks). Settings accessors chain; every
/// analysis method reads the settings as they stand at the call, so one
/// session can answer several questions — `kpis()`, then a curve, then an
/// optimization — under identical configuration and one telemetry record.
/// Successive calls accumulate into the same metrics/trace sinks; that is
/// the point of a session (export once, with the full picture).
class Analysis {
public:
  /// Takes ownership of an in-memory model (e.g. from a builder function).
  explicit Analysis(fmt::FaultMaintenanceTree model);

  /// Parses a model in the textual FMT format (fmt::parse_fmt). Throws
  /// ParseError on malformed input. (Parsing happens before the session
  /// exists, so it cannot appear as a span; the CLI traces it separately.)
  static Analysis from_text(const std::string& text);

  /// Reads and parses a model file. Throws IoError / ParseError.
  static Analysis from_file(const std::string& path);

  Analysis(Analysis&&) noexcept = default;
  Analysis& operator=(Analysis&&) noexcept = default;
  Analysis(const Analysis&) = delete;
  Analysis& operator=(const Analysis&) = delete;
  ~Analysis();

  // ---- Configuration (chainable) -----------------------------------------

  Analysis& horizon(double years);
  Analysis& trajectories(std::uint64_t n);
  Analysis& seed(std::uint64_t value);
  Analysis& threads(unsigned n);  ///< 0 = hardware concurrency
  Analysis& confidence(double level);
  Analysis& discount_rate(double rate);
  /// Adaptive stopping: simulate until the CI half-width of E[#failures]
  /// is <= rel * mean (trajectories() then caps the budget).
  Analysis& target_relative_error(double rel);
  /// Trajectory kernel: Engine::Scalar (reference), Engine::Batch (SoA lane
  /// kernel), or Engine::Default (FMTREE_ENGINE-resolved, the default).
  Analysis& engine(Engine e);
  /// Batch-engine lanes per worker batch; 0 = kernel default. Execution-only
  /// (results are bit-identical at any width).
  Analysis& lane_width(unsigned lanes);
  /// Cooperative cancellation/budgets for every subsequent call.
  Analysis& control(const smc::RunControl* ctl);
  /// Compiles a maintenance-policy script (the src/lang DSL) and attaches it
  /// to every subsequent analysis call: the model's built-in inspection
  /// modules are replaced by the script's calendars and the engines run the
  /// compiled rules at each inspection event. Throws ParseErrors (L1xx
  /// diagnostics) on malformed scripts. An empty source detaches the policy.
  Analysis& policy_script(const std::string& source);
  /// Reads `path` and forwards to policy_script. Throws IoError/ParseErrors.
  Analysis& policy_file(const std::string& path);

  /// Full settings escape hatch (also where the embedded RunSettings live).
  smc::AnalysisSettings& settings() noexcept { return settings_; }
  const smc::AnalysisSettings& settings() const noexcept { return settings_; }
  const fmt::FaultMaintenanceTree& model() const noexcept { return model_; }

  // ---- Telemetry sinks ----------------------------------------------------

  /// Attaches a MetricsRegistry to all subsequent analysis calls.
  Analysis& enable_metrics();
  /// Attaches a Tracer (phase spans: parse/build/simulate/solve/aggregate).
  Analysis& enable_tracing();
  /// Registers a throttled progress callback (trajectory throughput, CI
  /// trend, solver residuals). Implies nothing about metrics/tracing.
  Analysis& on_progress(obs::ProgressFn fn, double min_interval_seconds = 0.25);

  // ---- Result cache -------------------------------------------------------

  /// Attaches a memory-only result cache: kpis(), sweep() and the optimizer
  /// entry points first consult it, keyed on the canonical model hash and a
  /// settings fingerprint, and store fresh results back. A hit returns the
  /// bit-exact original report. No-op if a cache is already attached.
  Analysis& enable_cache();
  /// Attaches a cache with a disk tier in `path` (created if missing; throws
  /// IoError if uncreatable), replacing any previously attached cache — so
  /// results persist across sessions and processes.
  Analysis& cache_dir(const std::string& path);
  /// The attached cache, or nullptr (hit/miss counters live in its stats()).
  batch::ResultCache* result_cache() noexcept { return cache_.get(); }

  /// The sinks themselves; enable on first access if not already enabled.
  obs::MetricsRegistry& metrics();
  obs::Tracer& tracer();

  /// Exports ("" when the corresponding sink was never enabled).
  std::string metrics_json() const;
  std::string trace_json() const;
  std::string chrome_trace() const;

  // ---- Analyses -----------------------------------------------------------
  //
  // The blocking entry points below are retained for compatibility and for
  // scripts where blocking is the natural shape; new code that overlaps an
  // analysis with other work should prefer the asynchronous
  // submit()/poll()/wait() path, which also deduplicates identical
  // concurrent submissions (see serve/session.hpp).

  /// All KPIs of the study: reliability, E[#failures], availability, cost.
  /// Blocking (see the section comment); submit() is the async equivalent.
  smc::KpiReport kpis();

  /// Asynchronous kpis(): snapshots the model and settings as they stand,
  /// enqueues the computation on the session's embedded analysis service
  /// (serve::Session — created on first use with this session's cache and
  /// telemetry) and returns immediately. Identical concurrent submissions
  /// dedup onto one computation; all handles receive the same bit-exact
  /// report. Settings changed after submit() do not affect a pending handle.
  PendingKpis submit();

  /// P(first failure > t) on an even grid of `points` intervals over the
  /// horizon, or on an explicit grid.
  std::vector<smc::CurvePoint> reliability_curve(std::size_t points = 50);
  std::vector<smc::CurvePoint> reliability_curve(const std::vector<double>& grid);

  /// E[cumulative failures by t] on an even grid of `points` intervals.
  std::vector<smc::CurvePoint> expected_failures_curve(std::size_t points = 50);

  /// Monte-Carlo mean time to first failure (right-censored at the horizon).
  smc::MttfEstimate mttf();

  /// Exact MTTF via the CTMC solver (Markovian models only; throws
  /// UnsupportedModelError otherwise). Honors control + telemetry.
  double exact_mttf(std::size_t max_states = std::size_t{1} << 20);

  /// Evaluates every candidate policy under this session's settings and
  /// returns the cost curve plus the optimum. The factory rebuilds the model
  /// per policy; this session's own model is not used.
  maintenance::SweepResult optimize_policy(
      const maintenance::ModelFactory& factory,
      const std::vector<maintenance::MaintenancePolicy>& candidates);

  /// Golden-section refinement of the inspection frequency in [lo, hi].
  maintenance::RefinedOptimum optimize_inspection_frequency(
      const maintenance::ModelFactory& factory,
      const maintenance::MaintenancePolicy& base, double lo, double hi,
      int iterations = 16);

  /// Runs an explicit batch plan through the shared work-stealing pool with
  /// this session's cache and telemetry. The plan's threads (when 0) and
  /// control (when null) default to this session's settings; its jobs carry
  /// their own models and settings, so they need not match the session's.
  batch::SweepOutcome sweep(batch::SweepPlan plan);

  /// Convenience: builds one job per candidate policy under the session
  /// settings (labels = policy names) and runs it as above.
  batch::SweepOutcome sweep(
      const maintenance::ModelFactory& factory,
      const std::vector<maintenance::MaintenancePolicy>& candidates);

  /// Instantiates a corridor of joints from this session's model
  /// (fleet::generate_corridor) and analyses every joint through the shared
  /// pool with this session's cache and telemetry. The session settings —
  /// including any policy_script() — apply to every joint; options.settings
  /// and options.policy are overwritten with them, while resources, worst_k
  /// and the execution knobs are honoured (threads defaults to the session's).
  /// Throws DomainError on an invalid corridor spec.
  fleet::FleetOutcome fleet(const fleet::CorridorSpec& spec,
                            fleet::FleetOptions options = {});

private:
  fmt::FaultMaintenanceTree model_;
  smc::AnalysisSettings settings_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::ProgressReporter> progress_;
  std::unique_ptr<batch::ResultCache> cache_;
  /// The embedded analysis service backing submit(). Created lazily (it owns
  /// a dispatcher thread); declared last so it drains before the cache and
  /// sinks it borrows are destroyed.
  std::unique_ptr<serve::Session> service_;
};

}  // namespace fmtree
