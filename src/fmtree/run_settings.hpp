// fmtree::RunSettings — the execution knobs every analysis backend shares.
//
// Before this header existed, seed / threads / horizon / RunControl were
// re-declared (with identical meaning) on smc::AnalysisSettings,
// sim::SimOptions and analytic::SolverOptions, and each new cross-cutting
// concern (interruption in PR 2, telemetry in PR 3) had to be threaded
// through all three. The shared fields now live here exactly once, and the
// per-backend settings structs *embed* RunSettings as a base subobject:
//
//   smc::AnalysisSettings : fmtree::RunSettings   (adds trajectories, CI, ...)
//   sim::SimOptions       : fmtree::RunSettings   (adds failure-log, engine knobs)
//   analytic::SolverOptions : fmtree::RunSettings (adds tolerance, iterations)
//
// Field access through the old locations (settings.seed, opts.horizon, ...)
// compiles unchanged — the base subobject is transparent — so existing
// callers keep working; only positional/designated aggregate initialization
// of the derived structs needed updating. One RunSettings can be assigned
// across layers in a single statement:
//
//   static_cast<fmtree::RunSettings&>(sim_opts) = analysis_settings;
//
// Not every backend consumes every field (the single-trajectory simulator
// ignores seed/threads — stream identity comes from the RandomStream it is
// handed; the linear solvers ignore horizon/seed/threads). Each consumer
// documents what it honors.
#pragma once

#include <cstdint>

#include "obs/telemetry.hpp"

namespace fmtree::smc {
class RunControl;
}  // namespace fmtree::smc

namespace fmtree {

/// Shared execution settings, embedded by every per-backend options struct.
struct RunSettings {
  /// Analysis time horizon in the model's time unit (the study: years).
  double horizon = 10.0;
  /// Base RNG seed; trajectory i draws from RandomStream(seed, i).
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Optional cooperative stop handle (SIGINT, deadlines, budgets);
  /// nullptr = run to completion. See smc/run_control.hpp.
  const smc::RunControl* control = nullptr;
  /// Optional telemetry sinks (metrics, tracing, progress); disabled by
  /// default. Telemetry is observational: enabling it changes no analysis
  /// output bit. See obs/telemetry.hpp and DESIGN.md, "Observability".
  obs::Telemetry telemetry;
};

}  // namespace fmtree
