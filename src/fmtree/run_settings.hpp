// fmtree::RunSettings — the execution knobs every analysis backend shares.
//
// Before this header existed, seed / threads / horizon / RunControl were
// re-declared (with identical meaning) on smc::AnalysisSettings,
// sim::SimOptions and analytic::SolverOptions, and each new cross-cutting
// concern (interruption in PR 2, telemetry in PR 3) had to be threaded
// through all three. The shared fields now live here exactly once, and the
// per-backend settings structs *embed* RunSettings as a base subobject:
//
//   smc::AnalysisSettings : fmtree::RunSettings   (adds trajectories, CI, ...)
//   sim::SimOptions       : fmtree::RunSettings   (adds failure-log, engine knobs)
//   analytic::SolverOptions : fmtree::RunSettings (adds tolerance, iterations)
//
// Field access through the old locations (settings.seed, opts.horizon, ...)
// compiles unchanged — the base subobject is transparent — so existing
// callers keep working; only positional/designated aggregate initialization
// of the derived structs needed updating. One RunSettings can be assigned
// across layers in a single statement:
//
//   static_cast<fmtree::RunSettings&>(sim_opts) = analysis_settings;
//
// Not every backend consumes every field (the single-trajectory simulator
// ignores seed/threads — stream identity comes from the RandomStream it is
// handed; the linear solvers ignore horizon/seed/threads). Each consumer
// documents what it honors.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string_view>

#include "obs/telemetry.hpp"

namespace fmtree::smc {
class RunControl;
}  // namespace fmtree::smc

namespace fmtree::lang {
struct CompiledPolicy;
}  // namespace fmtree::lang

namespace fmtree {

/// Which Monte-Carlo trajectory kernel executes the simulation.
///
/// The two engines implement the same FMT semantics but draw from different
/// RNG families (scalar: stateful xoshiro streams; batch: counter-based
/// Philox streams), so their trajectory-level results differ bit-wise while
/// agreeing statistically. Each engine is individually deterministic: the
/// scalar engine at any thread count, the batch engine additionally at any
/// lane width and chunk size. Because the draw sequences differ, the engine
/// identity is part of every result-cache fingerprint (batch/fingerprint.hpp).
enum class Engine : std::uint8_t {
  Default = 0,  ///< resolve via FMTREE_ENGINE env var; Scalar when unset
  Scalar = 1,   ///< one trajectory at a time (sim::FmtSimulator + xoshiro)
  Batch = 2,    ///< lane-batch SoA kernel (sim::BatchExecutor + Philox)
};

/// Stable engine identifier ("scalar" / "batch"); Default resolves first.
constexpr const char* engine_name(Engine e) noexcept {
  return e == Engine::Batch ? "batch" : "scalar";
}

/// The process-wide default engine: FMTREE_ENGINE=batch selects the batch
/// kernel for every run that left Engine::Default in its settings; any other
/// value (or none) selects the scalar engine. Read once and cached, so the
/// choice is stable for the lifetime of the process.
inline Engine default_engine() noexcept {
  static const Engine resolved = [] {
    const char* v = std::getenv("FMTREE_ENGINE");
    return (v != nullptr && std::string_view(v) == "batch") ? Engine::Batch
                                                            : Engine::Scalar;
  }();
  return resolved;
}

/// Default -> the process default; Scalar/Batch pass through.
inline Engine resolve_engine(Engine e) noexcept {
  return e == Engine::Default ? default_engine() : e;
}

/// Shared execution settings, embedded by every per-backend options struct.
struct RunSettings {
  /// Analysis time horizon in the model's time unit (the study: years).
  double horizon = 10.0;
  /// Base RNG seed; trajectory i draws from RandomStream(seed, i) on the
  /// scalar engine and CounterStream(seed, i) on the batch engine.
  std::uint64_t seed = 1;
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Trajectory kernel; Default defers to FMTREE_ENGINE (see resolve_engine).
  Engine engine = Engine::Default;
  /// Batch-engine lanes simulated together per worker; 0 = the kernel's
  /// default width. Execution-only: reports are bit-identical at any width,
  /// so the value is excluded from cache fingerprints (like `threads`).
  unsigned lane_width = 0;
  /// Optional scripted maintenance policy (compiled from the policy DSL,
  /// see src/lang). When set, analysis runs replace the model's built-in
  /// inspection modules with the script's calendars and the engines invoke
  /// the compiled rules at every inspection event. The compiled form's
  /// fingerprint — not the script text — enters the settings fingerprint,
  /// so reformatting a script preserves cache keys while any semantic
  /// change (thresholds, calendars, budgets) invalidates them, and a
  /// scripted run never shares a cache entry with a built-in one.
  std::shared_ptr<const lang::CompiledPolicy> policy;
  /// Optional cooperative stop handle (SIGINT, deadlines, budgets);
  /// nullptr = run to completion. See smc/run_control.hpp.
  const smc::RunControl* control = nullptr;
  /// Optional telemetry sinks (metrics, tracing, progress); disabled by
  /// default. Telemetry is observational: enabling it changes no analysis
  /// output bit. See obs/telemetry.hpp and DESIGN.md, "Observability".
  obs::Telemetry telemetry;
};

}  // namespace fmtree
