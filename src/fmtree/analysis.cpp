#include "fmtree/analysis.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "fmt/parser.hpp"
#include "lang/policy.hpp"
#include "util/error.hpp"

namespace fmtree {

Analysis::Analysis(fmt::FaultMaintenanceTree model) : model_(std::move(model)) {}

Analysis::~Analysis() = default;

Analysis Analysis::from_text(const std::string& text) {
  return Analysis(fmt::parse_fmt(text));
}

Analysis Analysis::from_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw IoError("cannot open model file: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return from_text(text.str());
}

Analysis& Analysis::horizon(double years) {
  settings_.horizon = years;
  return *this;
}

Analysis& Analysis::trajectories(std::uint64_t n) {
  settings_.trajectories = n;
  return *this;
}

Analysis& Analysis::seed(std::uint64_t value) {
  settings_.seed = value;
  return *this;
}

Analysis& Analysis::threads(unsigned n) {
  settings_.threads = n;
  return *this;
}

Analysis& Analysis::confidence(double level) {
  settings_.confidence = level;
  return *this;
}

Analysis& Analysis::discount_rate(double rate) {
  settings_.discount_rate = rate;
  return *this;
}

Analysis& Analysis::target_relative_error(double rel) {
  settings_.target_relative_error = rel;
  return *this;
}

Analysis& Analysis::engine(Engine e) {
  settings_.engine = e;
  return *this;
}

Analysis& Analysis::lane_width(unsigned lanes) {
  settings_.lane_width = lanes;
  return *this;
}

Analysis& Analysis::control(const smc::RunControl* ctl) {
  settings_.control = ctl;
  return *this;
}

Analysis& Analysis::policy_script(const std::string& source) {
  if (source.empty()) {
    settings_.policy.reset();
    return *this;
  }
  settings_.policy =
      std::make_shared<const lang::CompiledPolicy>(lang::compile_policy(source));
  return *this;
}

Analysis& Analysis::policy_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw IoError("cannot open policy script: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return policy_script(text.str());
}

Analysis& Analysis::enable_metrics() {
  if (!metrics_) metrics_ = std::make_unique<obs::MetricsRegistry>();
  settings_.telemetry.metrics = metrics_.get();
  return *this;
}

Analysis& Analysis::enable_tracing() {
  if (!tracer_) tracer_ = std::make_unique<obs::Tracer>();
  settings_.telemetry.tracer = tracer_.get();
  return *this;
}

Analysis& Analysis::on_progress(obs::ProgressFn fn, double min_interval_seconds) {
  progress_ =
      std::make_unique<obs::ProgressReporter>(std::move(fn), min_interval_seconds);
  settings_.telemetry.progress = progress_.get();
  return *this;
}

Analysis& Analysis::enable_cache() {
  if (!cache_) cache_ = std::make_unique<batch::ResultCache>();
  return *this;
}

Analysis& Analysis::cache_dir(const std::string& path) {
  cache_ = std::make_unique<batch::ResultCache>(path);
  return *this;
}

obs::MetricsRegistry& Analysis::metrics() {
  enable_metrics();
  return *metrics_;
}

obs::Tracer& Analysis::tracer() {
  enable_tracing();
  return *tracer_;
}

std::string Analysis::metrics_json() const {
  return metrics_ ? metrics_->to_json() : std::string();
}

std::string Analysis::trace_json() const {
  return tracer_ ? tracer_->to_json() : std::string();
}

std::string Analysis::chrome_trace() const {
  return tracer_ ? tracer_->to_chrome_trace() : std::string();
}

bool PendingKpis::poll() { return response_.has_value() || ticket_.done(); }

bool PendingKpis::wait_for(double seconds) {
  return response_.has_value() || ticket_.wait_for(seconds);
}

smc::KpiReport PendingKpis::wait() {
  if (!response_) {
    response_ = ticket_.take();
    // The ticket is spent; drop it now so a resolved handle no longer
    // references the service and may safely outlive its Analysis session.
    ticket_ = serve::Ticket();
  }
  if (response_->jobs.empty()) throw Error("async analysis resolved to no job");
  const serve::JobOutcome& job = response_->jobs.front();
  switch (job.state) {
    case serve::JobState::Done: return job.report;
    case serve::JobState::Failed:
      throw Error("async analysis failed [" + job.failure.kind +
                  "]: " + job.failure.message);
    case serve::JobState::Cancelled: throw Error("async analysis was cancelled");
    case serve::JobState::Interrupted:
      throw Error("async analysis was interrupted before completion");
  }
  throw Error("async analysis resolved to an unknown state");
}

void PendingKpis::cancel() { ticket_.cancel(); }

PendingKpis Analysis::submit() {
  enable_cache();  // the service shares this session's cache (dedup + hits)
  if (!service_) {
    serve::SessionConfig config;
    config.threads = settings_.threads;
    config.cache = cache_.get();
    config.telemetry = settings_.telemetry;
    service_ = std::make_unique<serve::Session>(std::move(config));
  }
  batch::SweepJob job;
  job.label = "analysis";
  job.model = model_;
  job.settings = settings_;
  job.settings.control = nullptr;  // cancellation is the ticket's job here
  job.settings.telemetry = {};
  PendingKpis pending;
  std::vector<batch::SweepJob> jobs;
  jobs.push_back(std::move(job));
  pending.ticket_ = service_->submit_jobs(std::move(jobs));
  return pending;
}

smc::KpiReport Analysis::kpis() {
  if (!cache_) return smc::analyze(model_, settings_);
  const batch::CacheKey key = batch::kpi_cache_key(model_, settings_);
  if (std::optional<smc::KpiReport> hit = cache_->get(key)) return *std::move(hit);
  smc::KpiReport report = smc::analyze(model_, settings_);
  cache_->put(key, report);  // refuses truncated reports itself
  return report;
}

std::vector<smc::CurvePoint> Analysis::reliability_curve(std::size_t points) {
  return reliability_curve(smc::linspace_grid(settings_.horizon, points));
}

std::vector<smc::CurvePoint> Analysis::reliability_curve(
    const std::vector<double>& grid) {
  return smc::reliability_curve(model_, grid, settings_);
}

std::vector<smc::CurvePoint> Analysis::expected_failures_curve(std::size_t points) {
  return smc::expected_failures_curve(
      model_, smc::linspace_grid(settings_.horizon, points), settings_);
}

smc::MttfEstimate Analysis::mttf() {
  return smc::mean_time_to_failure(model_, settings_);
}

double Analysis::exact_mttf(std::size_t max_states) {
  analytic::SolverOptions opts;
  static_cast<RunSettings&>(opts) = settings_;
  return analytic::exact_mttf(model_, max_states, opts);
}

maintenance::SweepResult Analysis::optimize_policy(
    const maintenance::ModelFactory& factory,
    const std::vector<maintenance::MaintenancePolicy>& candidates) {
  return maintenance::sweep_policies(factory, candidates, settings_, cache_.get());
}

maintenance::RefinedOptimum Analysis::optimize_inspection_frequency(
    const maintenance::ModelFactory& factory,
    const maintenance::MaintenancePolicy& base, double lo, double hi,
    int iterations) {
  return maintenance::refine_inspection_frequency(factory, base, lo, hi, settings_,
                                                  iterations, cache_.get());
}

batch::SweepOutcome Analysis::sweep(batch::SweepPlan plan) {
  if (plan.threads == 0) plan.threads = settings_.threads;
  if (plan.control == nullptr) plan.control = settings_.control;
  return batch::run_sweep(plan, cache_.get(), settings_.telemetry);
}

fleet::FleetOutcome Analysis::fleet(const fleet::CorridorSpec& spec,
                                    fleet::FleetOptions options) {
  options.settings = settings_;
  options.policy = settings_.policy;
  if (options.threads == 0) options.threads = settings_.threads;
  const fleet::Corridor corridor = fleet::generate_corridor(model_, spec);
  return fleet::analyze_fleet(corridor, options, cache_.get(), settings_.telemetry);
}

batch::SweepOutcome Analysis::sweep(
    const maintenance::ModelFactory& factory,
    const std::vector<maintenance::MaintenancePolicy>& candidates) {
  batch::SweepPlan plan;
  plan.jobs.reserve(candidates.size());
  for (const maintenance::MaintenancePolicy& policy : candidates) {
    batch::SweepJob job;
    job.label = policy.name;
    job.model = factory(policy);
    job.settings = settings_;
    job.settings.control = nullptr;
    job.settings.telemetry = {};
    plan.jobs.push_back(std::move(job));
  }
  return sweep(std::move(plan));
}

}  // namespace fmtree
