// The `fmtree` command-line tool: analyse fault-maintenance-tree models in
// the .fmt text format without writing C++.
//
//   fmtree check   <model.fmt>                    parse + validate + summary
//   fmtree analyze <model.fmt> [options]          KPI report (SMC)
//   fmtree exact   <model.fmt> [options]          CTMC unreliability/MTTF
//   fmtree dot     <model.fmt>                    Graphviz of the structure
//   fmtree cutsets <model.fmt> [options]          minimal cut sets + importance
//   fmtree compare <a.fmt> <b.fmt> [options]      paired policy comparison
//   fmtree sweep   <model.fmt> [options]          inspection-frequency cost curve
//   fmtree fleet   <model.fmt> [options]          N-joint corridor KPIs
//   fmtree lint-policy <script.mpl>...            compile policy scripts, report L1xx
//   fmtree serve   <socket> [options]             analysis daemon (fmtree.request/v1)
//
// Options: --horizon <years>  --runs <n>  --seed <n>  --threads <n>
//          --engine <scalar|batch>  --confidence <p>
//          --quantiles <p1,p2,...>  --timeout <s>
//          --state-cap <n>    --no-fallback  --json-errors
//          --metrics <file>   --trace <file|chrome:file>  --progress
//          --frequencies <f1,f2,...>  --policy <script.mpl>
//          --cache-dir <dir>  --resume
//          --max-retries <n>  --stall-timeout <s>
//          --connect <socket>  --emit-request            (sweep/fleet as a client)
//          --joints <n>  --fleet-seed <n>  --jitter <x>  --coupling <x>
//          --spacing-km <x>  --crews <n>  --worst <n>              (fleet)
//          --calibrate <csv>  --generate-incidents <csv>
//          --observe-years <t>                       (fleet incident data)
//          --queue-limit <n>   --model-root <dir>        (serve)
//          --inject-fault <site:spec>  (repeatable; testing only)
//
// Split into a library so argument parsing and command execution are unit
// testable; main() is a thin wrapper.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fmtree/run_settings.hpp"
#include "smc/run_control.hpp"

namespace fmtree::cli {

enum class Command {
  Check,
  Analyze,
  Exact,
  Dot,
  CutSets,
  Compare,
  Sweep,
  Fleet,
  LintPolicy,
  Serve,
};

/// Stable process exit codes (documented in DESIGN.md, "Failure semantics").
enum ExitCode : int {
  kExitOk = 0,             ///< success
  kExitTruncated = 1,      ///< success over a truncated (but exact) prefix
  kExitUsage = 2,          ///< bad usage, bad option values, I/O failures
  kExitDiagnostics = 3,    ///< model failed to parse / validate
  kExitResourceLimit = 4,  ///< a resource budget was exhausted
  kExitInternal = 5,       ///< unexpected internal error
};

struct Options {
  Command command = Command::Check;
  std::string model_path;
  std::string model_path_b;  ///< second model (compare only)
  double horizon = 10.0;
  std::uint64_t runs = 10000;
  std::uint64_t seed = 1;
  unsigned threads = 0;
  /// Trajectory kernel (--engine scalar|batch); Default defers to the
  /// FMTREE_ENGINE environment variable.
  Engine engine = Engine::Default;
  double confidence = 0.95;
  std::vector<double> quantiles;  ///< empty = skip quantile report
  bool json_errors = false;       ///< report failures as JSON diagnostics on stderr
  double timeout = 0.0;           ///< wall-clock budget in seconds; 0 = none
  std::uint64_t state_cap = 1u << 20;  ///< CTMC state-space cap for `exact`
  bool no_fallback = false;       ///< fail `exact` instead of falling back to SMC
  /// Telemetry exports; written after the command runs (also on a truncated
  /// run). Empty = sink disabled. A `chrome:` prefix on the trace path
  /// selects Chrome trace_event format instead of "fmtree.trace/v1".
  std::string metrics_path;
  std::string trace_path;
  bool progress = false;  ///< emit throttled progress lines while running
  /// Destination for --progress lines; nullptr = std::cerr. main_impl points
  /// it at its `err` stream so tests capture the output.
  std::ostream* progress_stream = nullptr;
  /// Inspection frequencies (per time unit; 0 = no inspections) for `sweep`.
  /// Defaults to the paper's cost-curve grid.
  std::vector<double> frequencies = {0, 0.5, 1, 2, 3, 4, 6, 8, 12, 24};
  /// Set when --frequencies was given explicitly. A sweep with --policy and
  /// no explicit --frequencies evaluates only the scripted candidates.
  bool frequencies_set = false;
  /// Maintenance-policy script files: `sweep --policy <file>` (repeatable,
  /// each compiled into one scripted sweep candidate) and the positional
  /// script list of `lint-policy`.
  std::vector<std::string> policies;
  /// On-disk result cache directory for `sweep`; empty = no cache.
  std::string cache_dir;
  /// Resume a previous sweep from the checkpoint manifest in cache_dir:
  /// completed jobs replay bit-identically from the cache; only the rest are
  /// simulated. Requires --cache-dir.
  bool resume = false;
  /// Per-job retry budget for transient failures (SweepPlan::max_retries).
  std::uint32_t max_retries = 2;
  /// Sweep stall watchdog in seconds; 0 = off (SweepPlan::stall_timeout_s).
  double stall_timeout = 0.0;
  /// Fault-injection specs ("site:mode[,trigger]") armed for the duration of
  /// the command, on top of any FMTREE_FAULTS armings. Testing only.
  std::vector<std::string> inject_faults;
  /// `serve`: the local socket to listen on (the positional argument).
  std::string socket_path;
  /// `serve`: admission bound on outstanding jobs (queued + running); a
  /// request that would exceed it is rejected whole with R120.
  std::size_t queue_limit = 64;
  /// `serve`: directory model "ref"s resolve in.
  std::string model_root = "models";
  /// `sweep/fleet --connect`: run against the daemon at this socket instead
  /// of in-process; the rendered output is bit-identical either way.
  std::string connect;
  /// `sweep/fleet --emit-request`: print the canonical "fmtree.request/v1"
  /// document this invocation describes and exit without analysing.
  bool emit_request = false;
  /// `fleet`: corridor shape (fleet::CorridorSpec) — joint count, fleet seed
  /// (independent of the analysis --seed), lognormal lifetime jitter,
  /// neighbour load-coupling strength and track spacing.
  std::size_t joints = 50;
  std::uint64_t fleet_seed = 0;
  double jitter = 0.1;
  double coupling = 0.0;
  double spacing_km = 1.0;
  /// `fleet`: shared maintenance resources and the worst-k table size.
  std::uint32_t crews = 2;
  std::size_t worst_k = 5;
  /// `fleet --calibrate <csv>`: stream the incident database (O(1) memory)
  /// and print the per-mode Garwood rate table instead of analysing.
  /// Exposure = --joints assets x --observe-years.
  std::string calibrate_path;
  /// `fleet --generate-incidents <csv>`: simulate --joints assets for
  /// --observe-years under the model's own maintenance policy and stream the
  /// incident database to <csv> instead of analysing.
  std::string generate_incidents_path;
  double observe_years = 0.0;
};

/// Process-wide cooperative stop handle. Long-running commands (analyze)
/// poll it between trajectories; main() wires SIGINT to request_stop(), so
/// an interrupted run still reports exact statistics over the completed
/// trajectory prefix (exit code kExitTruncated).
smc::RunControl& interrupt_control();

/// Parses argv-style arguments (excluding the program name). Throws
/// DomainError with a user-facing message on invalid usage.
Options parse_args(const std::vector<std::string>& args);

/// Executes a command on a model given as text (already read from the
/// file). Returns a process exit code. Not valid for Command::Compare.
int run_on_text(const Options& options, const std::string& model_text,
                std::ostream& out);

/// Executes the paired comparison (common random numbers) of two models.
int run_compare(const Options& options, const std::string& model_a_text,
                const std::string& model_b_text, std::ostream& out);

/// Full entry point: reads the model file and dispatches. Errors are
/// reported on `err` with a non-zero return.
int main_impl(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);

/// The usage/help text.
std::string usage();

}  // namespace fmtree::cli
