#include "cli/cli.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>

#include "analytic/fmt2ctmc.hpp"
#include "analytic/solvers.hpp"
#include "batch/checkpoint.hpp"
#include "batch/result_cache.hpp"
#include "batch/sweep.hpp"
#include "data/generator.hpp"
#include "data/stream.hpp"
#include "fleet/fleet.hpp"
#include "fmt/parser.hpp"
#include "ft/cutsets.hpp"
#include "ft/dot.hpp"
#include "ft/bdd.hpp"
#include "ft/importance.hpp"
#include "lang/policy.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "serve/client.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "smc/compare.hpp"
#include "smc/kpi.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/table.hpp"

namespace fmtree::cli {

smc::RunControl& interrupt_control() {
  static smc::RunControl control;
  return control;
}

namespace {

double parse_double(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  double value = 0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw DomainError("invalid " + what + ": '" + text + "'");
  }
  if (used != text.size()) throw DomainError("invalid " + what + ": '" + text + "'");
  return value;
}

std::uint64_t parse_count(const std::string& text, const std::string& what) {
  const double v = parse_double(text, what);
  if (v < 0 || v != std::floor(v))
    throw DomainError(what + " must be a nonnegative integer");
  return static_cast<std::uint64_t>(v);
}

std::vector<double> parse_quantiles(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double q = parse_double(item, "quantile");
    if (!(q >= 0 && q <= 1)) throw DomainError("quantiles must lie in [0,1]");
    out.push_back(q);
  }
  if (out.empty()) throw DomainError("empty quantile list");
  return out;
}

std::vector<double> parse_frequencies(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double f = parse_double(item, "frequency");
    if (!(f >= 0) || !std::isfinite(f))
      throw DomainError("frequencies must be finite and >= 0");
    out.push_back(f);
  }
  if (out.empty()) throw DomainError("empty frequency list");
  return out;
}

}  // namespace

Options parse_args(const std::vector<std::string>& args) {
  if (args.empty()) throw DomainError("missing command\n" + usage());
  Options opt;
  const std::string& cmd = args[0];
  if (cmd == "check") opt.command = Command::Check;
  else if (cmd == "analyze") opt.command = Command::Analyze;
  else if (cmd == "exact") opt.command = Command::Exact;
  else if (cmd == "dot") opt.command = Command::Dot;
  else if (cmd == "cutsets") opt.command = Command::CutSets;
  else if (cmd == "compare") opt.command = Command::Compare;
  else if (cmd == "sweep") opt.command = Command::Sweep;
  else if (cmd == "fleet") opt.command = Command::Fleet;
  else if (cmd == "lint-policy") opt.command = Command::LintPolicy;
  else if (cmd == "serve") opt.command = Command::Serve;
  else throw DomainError("unknown command '" + cmd + "'\n" + usage());

  // Flags and positional model paths may interleave in any order.
  std::vector<std::string> positional;
  for (std::size_t i = 1; i < args.size();) {
    const std::string& flag = args[i++];
    if (!flag.starts_with("--")) {
      positional.push_back(flag);
      continue;
    }
    auto value = [&]() -> const std::string& {
      if (i >= args.size()) throw DomainError("flag " + flag + " needs a value");
      return args[i++];
    };
    if (flag == "--horizon") opt.horizon = parse_double(value(), "horizon");
    else if (flag == "--runs") opt.runs = parse_count(value(), "runs");
    else if (flag == "--seed") opt.seed = parse_count(value(), "seed");
    else if (flag == "--threads")
      opt.threads = static_cast<unsigned>(parse_count(value(), "threads"));
    else if (flag == "--engine") {
      const std::string& name = value();
      if (name == "scalar") opt.engine = Engine::Scalar;
      else if (name == "batch") opt.engine = Engine::Batch;
      else throw DomainError("--engine must be 'scalar' or 'batch'");
    }
    else if (flag == "--confidence") opt.confidence = parse_double(value(), "confidence");
    else if (flag == "--quantiles") opt.quantiles = parse_quantiles(value());
    else if (flag == "--timeout") opt.timeout = parse_double(value(), "timeout");
    else if (flag == "--state-cap") opt.state_cap = parse_count(value(), "state cap");
    else if (flag == "--json-errors") opt.json_errors = true;
    else if (flag == "--no-fallback") opt.no_fallback = true;
    else if (flag == "--metrics") opt.metrics_path = value();
    else if (flag == "--trace") opt.trace_path = value();
    else if (flag == "--progress") opt.progress = true;
    else if (flag == "--frequencies") {
      opt.frequencies = parse_frequencies(value());
      opt.frequencies_set = true;
    }
    else if (flag == "--policy") opt.policies.push_back(value());
    else if (flag == "--cache-dir") opt.cache_dir = value();
    else if (flag == "--resume") opt.resume = true;
    else if (flag == "--max-retries")
      opt.max_retries = static_cast<std::uint32_t>(parse_count(value(), "retries"));
    else if (flag == "--stall-timeout")
      opt.stall_timeout = parse_double(value(), "stall timeout");
    else if (flag == "--inject-fault") {
      const std::string& spec = value();
      fault::parse_fault_spec(spec);  // validate now: usage error, not runtime
      opt.inject_faults.push_back(spec);
    }
    else if (flag == "--queue-limit") {
      opt.queue_limit = static_cast<std::size_t>(parse_count(value(), "queue limit"));
      if (opt.queue_limit == 0) throw DomainError("--queue-limit must be positive");
    }
    else if (flag == "--model-root") opt.model_root = value();
    else if (flag == "--connect") opt.connect = value();
    else if (flag == "--emit-request") opt.emit_request = true;
    else if (flag == "--joints") {
      opt.joints = static_cast<std::size_t>(parse_count(value(), "joints"));
      if (opt.joints == 0) throw DomainError("--joints must be positive");
    }
    else if (flag == "--fleet-seed") opt.fleet_seed = parse_count(value(), "fleet seed");
    else if (flag == "--jitter") opt.jitter = parse_double(value(), "jitter");
    else if (flag == "--coupling") opt.coupling = parse_double(value(), "coupling");
    else if (flag == "--spacing-km")
      opt.spacing_km = parse_double(value(), "spacing");
    else if (flag == "--crews")
      opt.crews = static_cast<std::uint32_t>(parse_count(value(), "crews"));
    else if (flag == "--worst")
      opt.worst_k = static_cast<std::size_t>(parse_count(value(), "worst count"));
    else if (flag == "--calibrate") opt.calibrate_path = value();
    else if (flag == "--generate-incidents") opt.generate_incidents_path = value();
    else if (flag == "--observe-years")
      opt.observe_years = parse_double(value(), "observation window");
    else throw DomainError("unknown flag '" + flag + "'\n" + usage());
  }
  if (opt.command == Command::LintPolicy) {
    // lint-policy takes one or more script files, not a model.
    if (positional.empty())
      throw DomainError("lint-policy needs at least one policy script\n" + usage());
    for (std::string& path : positional) opt.policies.push_back(std::move(path));
  } else {
    const std::size_t want = opt.command == Command::Compare ? 2u : 1u;
    if (positional.empty()) {
      throw DomainError(std::string(opt.command == Command::Serve
                                        ? "missing socket path"
                                        : "missing model file") +
                        "\n" + usage());
    }
    if (positional.size() < want)
      throw DomainError("compare needs two model files\n" + usage());
    if (positional.size() > want)
      throw DomainError("unexpected argument '" + positional[want] + "'\n" + usage());
    if (opt.command == Command::Serve) {
      opt.socket_path = positional[0];
    } else {
      opt.model_path = positional[0];
    }
    if (opt.command == Command::Compare) opt.model_path_b = positional[1];
  }
  if (opt.command != Command::Sweep && opt.command != Command::Fleet &&
      (!opt.connect.empty() || opt.emit_request))
    throw DomainError("--connect / --emit-request only apply to sweep and fleet");
  if (!opt.policies.empty() && opt.command != Command::Sweep &&
      opt.command != Command::Fleet && opt.command != Command::LintPolicy)
    throw DomainError("--policy only applies to sweep and fleet");
  if (opt.command == Command::Fleet && opt.policies.size() > 1)
    throw DomainError(
        "fleet accepts at most one --policy (the script applies to every "
        "joint)");
  if (opt.command == Command::Fleet) {
    if (!(opt.jitter >= 0) || !std::isfinite(opt.jitter))
      throw DomainError("--jitter must be finite and >= 0");
    if (!(opt.coupling >= 0) || !std::isfinite(opt.coupling))
      throw DomainError("--coupling must be finite and >= 0");
    if (!(opt.spacing_km > 0) || !std::isfinite(opt.spacing_km))
      throw DomainError("--spacing-km must be positive and finite");
    if (!opt.calibrate_path.empty() && !opt.generate_incidents_path.empty())
      throw DomainError("--calibrate and --generate-incidents are exclusive");
    if ((!opt.calibrate_path.empty() || !opt.generate_incidents_path.empty()) &&
        !(opt.observe_years > 0))
      throw DomainError(
          "--calibrate / --generate-incidents need --observe-years > 0");
  } else if (!opt.calibrate_path.empty() || !opt.generate_incidents_path.empty()) {
    throw DomainError("--calibrate / --generate-incidents only apply to fleet");
  }
  if (opt.resume && opt.command == Command::Fleet)
    throw DomainError(
        "--resume only applies to sweep (fleet re-runs replay through the "
        "result cache instead)");
  if (opt.resume && !opt.connect.empty())
    throw DomainError(
        "--resume is incompatible with --connect (the daemon owns the cache "
        "and checkpoint)");
  if (!(opt.horizon > 0)) throw DomainError("--horizon must be positive");
  if (opt.runs == 0) throw DomainError("--runs must be positive");
  if (!(opt.confidence > 0 && opt.confidence < 1))
    throw DomainError("--confidence must lie in (0,1)");
  if (!(opt.timeout >= 0)) throw DomainError("--timeout must be nonnegative");
  if (opt.state_cap == 0) throw DomainError("--state-cap must be positive");
  if (!(opt.stall_timeout >= 0))
    throw DomainError("--stall-timeout must be nonnegative");
  if (opt.resume && opt.cache_dir.empty())
    throw DomainError("--resume needs --cache-dir (the checkpoint lives there)");
  return opt;
}

namespace {

std::string ci(const ConfidenceInterval& c, int decimals) {
  return cell(c.point, decimals) + " [" + cell(c.lo, decimals) + ", " +
         cell(c.hi, decimals) + "]";
}

/// One progress line, throttled by the reporter. Quantities that do not
/// apply to the current phase (ETA before a rate exists, CI before two
/// batches, residual outside solve) are simply omitted.
void print_progress(std::ostream& out, const obs::Progress& p) {
  out << "progress: " << p.phase << " " << p.done;
  if (p.total > 0) {
    out << "/" << p.total << " ("
        << static_cast<int>(100.0 * static_cast<double>(p.done) /
                            static_cast<double>(p.total))
        << "%)";
  }
  if (p.rate > 0) out << "  " << cell(p.rate, 0) << "/s";
  if (p.eta_seconds >= 0) out << "  ETA " << cell(p.eta_seconds, 1) << "s";
  if (p.ci_half_width >= 0) {
    out << "  rel.CI " << cell(p.ci_half_width, 4);
    if (p.ci_target > 0) out << " (target " << cell(p.ci_target, 4) << ")";
  }
  if (p.residual >= 0) out << "  residual " << cell(p.residual, 10);
  out << "\n" << std::flush;
}

/// The telemetry sinks of one CLI invocation, created from the --metrics /
/// --trace / --progress flags. Commands run with handles() wired into their
/// settings; write_files() exports afterwards — also for a truncated run,
/// whose telemetry is exactly what one wants to inspect.
struct TelemetrySession {
  explicit TelemetrySession(const Options& opt) : opt_(opt) {
    if (!opt.metrics_path.empty()) metrics_ = std::make_unique<obs::MetricsRegistry>();
    if (!opt.trace_path.empty()) tracer_ = std::make_unique<obs::Tracer>();
    if (opt.progress) {
      std::ostream* sink =
          opt.progress_stream != nullptr ? opt.progress_stream : &std::cerr;
      progress_ = std::make_unique<obs::ProgressReporter>(
          [sink](const obs::Progress& p) { print_progress(*sink, p); },
          /*min_interval_seconds=*/1.0);
    }
  }

  obs::Telemetry handles() const noexcept {
    return {metrics_.get(), tracer_.get(), progress_.get()};
  }

  obs::Tracer* tracer() const noexcept { return tracer_.get(); }

  void write_files() const {
    if (metrics_) write(opt_.metrics_path, metrics_->to_json());
    if (tracer_) {
      constexpr std::string_view kChrome = "chrome:";
      if (opt_.trace_path.starts_with(kChrome)) {
        write(opt_.trace_path.substr(kChrome.size()), tracer_->to_chrome_trace());
      } else {
        write(opt_.trace_path, tracer_->to_json());
      }
    }
  }

private:
  static void write(const std::string& path, const std::string& content) {
    std::ofstream file(path);
    file << content << "\n";
    if (!file) throw IoError("cannot write '" + path + "'");
  }

  const Options& opt_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::ProgressReporter> progress_;
};

int cmd_check(const fmt::FaultMaintenanceTree& model, std::ostream& out) {
  out << "model OK\n"
      << "  top event:           " << model.name(model.top()) << "\n"
      << "  leaves:              " << model.num_ebes() << "\n"
      << "  gates:               " << model.structure().gates().size() << "\n"
      << "  rate dependencies:   " << model.rdeps().size() << "\n"
      << "  functional deps:     " << model.fdeps().size() << "\n"
      << "  inspection modules:  " << model.inspections().size() << "\n"
      << "  replacement modules: " << model.replacements().size() << "\n"
      << "  corrective:          " << (model.corrective().enabled ? "on" : "off") << "\n"
      << "  markovian (exact analysable): " << (model.is_markovian() ? "yes" : "no")
      << "\n";
  return 0;
}

int cmd_analyze(const Options& opt, const fmt::FaultMaintenanceTree& model,
                std::ostream& out, obs::Telemetry telemetry) {
  smc::AnalysisSettings s;
  s.horizon = opt.horizon;
  s.trajectories = opt.runs;
  s.seed = opt.seed;
  s.threads = opt.threads;
  s.engine = opt.engine;
  s.confidence = opt.confidence;
  s.telemetry = telemetry;
  // The process-wide handle lets a SIGINT (wired up in main()) or --timeout
  // stop the run between trajectories; the report then covers the completed
  // prefix exactly. reset() clears state left by a previous run in-process.
  smc::RunControl& control = interrupt_control();
  control.reset();
  if (opt.timeout > 0) control.set_timeout(opt.timeout);
  s.control = &control;
  const smc::KpiReport k = smc::analyze(model, s);
  out << "KPIs over " << opt.horizon << " time units (" << k.trajectories
      << " runs, " << opt.confidence * 100 << "% CIs):\n";
  TextTable t({"KPI", "value"});
  t.add_row({"reliability", ci(k.reliability, 5)});
  t.add_row({"expected failures", ci(k.expected_failures, 4)});
  t.add_row({"failures / time unit", ci(k.failures_per_year, 5)});
  t.add_row({"availability", ci(k.availability, 6)});
  t.add_row({"total cost", ci(k.total_cost, 1)});
  t.add_row({"cost / time unit", ci(k.cost_per_year, 2)});
  t.print(out);

  out << "\ncost breakdown (per time unit):\n";
  const fmt::CostBreakdown py = k.mean_cost / opt.horizon;
  TextTable c({"component", "value"});
  c.add_row({"inspections", cell(py.inspection, 2)});
  c.add_row({"repairs", cell(py.repair, 2)});
  c.add_row({"replacements", cell(py.replacement, 2)});
  c.add_row({"corrective", cell(py.corrective, 2)});
  c.add_row({"downtime", cell(py.downtime, 2)});
  c.print(out);

  out << "\nfailure attribution (expected failures per run):\n";
  TextTable a({"leaf", "failures", "repairs"});
  for (std::size_t i = 0; i < model.num_ebes(); ++i)
    a.add_row({model.ebes()[i].name, cell(k.failures_per_leaf[i], 4),
               cell(k.repairs_per_leaf[i], 3)});
  a.print(out);

  // A truncated run already consumed the stop signal; launching the quantile
  // batch would just truncate again at zero trajectories, so skip it.
  if (!opt.quantiles.empty() && !k.truncated) {
    const auto q = smc::failure_time_quantiles(model, opt.quantiles, s);
    out << "\ntime-to-failure quantiles:\n";
    TextTable qt({"p", "t"});
    for (std::size_t i = 0; i < q.size(); ++i)
      qt.add_row({cell(opt.quantiles[i], 3),
                  std::isinf(q[i]) ? "> horizon" : cell(q[i], 3)});
    qt.print(out);
  }
  if (k.truncated) {
    out << "\nNOTE: run truncated (" << smc::stop_reason_name(k.stop_reason)
        << ") after " << k.trajectories << " of " << opt.runs
        << " trajectories; statistics are exact over that prefix.\n";
    return kExitTruncated;
  }
  return kExitOk;
}

int cmd_exact(const Options& opt, const fmt::FaultMaintenanceTree& model,
              std::ostream& out, obs::Telemetry telemetry) {
  try {
    // Compute everything before printing so a state-cap overflow on any of
    // the three queries yields a clean fallback instead of a partial report.
    const double unrel =
        analytic::exact_unreliability(model, opt.horizon, opt.state_cap);
    analytic::SolverOptions solver;
    solver.telemetry = telemetry;
    const double mttf = analytic::exact_mttf(model, opt.state_cap, solver);
    const bool renewal = model.corrective().enabled && model.corrective().delay == 0.0;
    const double failures =
        renewal ? analytic::exact_expected_failures(model, opt.horizon, opt.state_cap)
                : 0.0;
    out << "exact CTMC analysis (uniformization):\n";
    out << "  P(failure within " << opt.horizon << ") = " << cell(unrel, 8) << "\n";
    out << "  MTTF = " << cell(mttf, 6) << "\n";
    if (renewal) {
      out << "  E[#failures within " << opt.horizon << "] = " << cell(failures, 6)
          << "\n";
    }
    return kExitOk;
  } catch (const ResourceLimitError& e) {
    if (opt.no_fallback) throw;
    out << "exact analysis hit a resource limit (" << e.what()
        << ");\nfalling back to Monte-Carlo estimation:\n\n";
    return cmd_analyze(opt, model, out, telemetry);
  }
}

std::string read_text_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw IoError("cannot open '" + path + "'");
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

/// The canonical description of a sweep invocation: the same document
/// `--emit-request` prints, the socket client sends, and the daemon parses.
/// Policy script files are inlined into the request, so the daemon needs no
/// access to the client's filesystem.
serve::Request sweep_request(const Options& opt, const std::string& model_text) {
  serve::Request request;
  request.model_text = model_text;
  request.settings.horizon = opt.horizon;
  request.settings.trajectories = opt.runs;
  request.settings.seed = opt.seed;
  request.settings.engine = opt.engine;
  request.settings.confidence = opt.confidence;
  // With --policy and no explicit --frequencies the sweep evaluates only the
  // scripted candidates (the default grid would drown them in noise).
  if (opt.policies.empty() || opt.frequencies_set)
    request.frequencies = opt.frequencies;
  for (const std::string& path : opt.policies) {
    serve::Request::PolicyScript script;
    script.text = read_text_file(path);
    request.scripts.push_back(std::move(script));
  }
  request.has_policy = true;
  return request;
}

/// Renders a served/in-process sweep Response exactly as the classic
/// run_sweep-based CLI did, and returns the process exit code. The cache
/// summary line appears only for a local run with --cache-dir (a client has
/// no visibility into the daemon's cache totals beyond the per-job source).
int render_sweep_response(const Options& opt, const serve::Response& o,
                          bool show_cache_line, std::ostream& out) {
  out << "inspection-frequency cost curve over " << opt.horizon << " time units ("
      << opt.runs << " runs each, " << opt.confidence * 100 << "% CIs):\n";
  TextTable t({"policy", "cost / time unit", "failures / time unit", "source"});
  std::size_t best = o.jobs.size();
  for (std::size_t i = 0; i < o.jobs.size(); ++i) {
    const serve::JobOutcome& r = o.jobs[i];
    if (r.state == serve::JobState::Failed) {
      t.add_row({r.label, "(failed: " + r.failure.kind + ")", "", ""});
      continue;
    }
    if (r.state == serve::JobState::Cancelled) {
      t.add_row({r.label, "(cancelled)", "", ""});
      continue;
    }
    if (r.state == serve::JobState::Interrupted) {
      t.add_row({r.label, "(interrupted)", "", ""});
      continue;
    }
    t.add_row({r.label, ci(r.report.cost_per_year, 2), ci(r.report.failures_per_year, 5),
               r.cache_hit ? "cache" : "simulated"});
    if (best == o.jobs.size() ||
        r.report.cost_per_year.point < o.jobs[best].report.cost_per_year.point)
      best = i;
  }
  t.print(out);
  if (best < o.jobs.size()) {
    out << "\ncost-optimal policy: " << o.jobs[best].label << " at "
        << cell(o.jobs[best].report.cost_per_year.point, 2) << " / time unit\n";
  }
  if (show_cache_line) {
    const std::uint64_t hits = o.count(serve::JobState::Done) -
                               [&] {
                                 std::uint64_t simulated = 0;
                                 for (const serve::JobOutcome& r : o.jobs)
                                   if (r.state == serve::JobState::Done && !r.cache_hit)
                                     ++simulated;
                                 return simulated;
                               }();
    out << "cache: " << hits << " hits, " << o.jobs.size() - hits << " misses ("
        << opt.cache_dir << ")\n";
  }
  std::uint64_t retries = 0;
  for (const serve::JobOutcome& r : o.jobs) retries += r.retries;
  if (retries > 0)
    out << "self-healing: " << retries << " retr" << (retries == 1 ? "y" : "ies")
        << " recovered transient failures\n";
  for (const Diagnostic& d : o.warnings)
    out << "fmtree: " << format_diagnostic(d) << "\n";
  const std::uint64_t jobs_failed = o.count(serve::JobState::Failed);
  if (jobs_failed > 0) {
    out << "\nNOTE: " << jobs_failed << " job(s) failed permanently:\n";
    for (const serve::JobOutcome& r : o.jobs)
      if (r.state == serve::JobState::Failed)
        out << "  " << r.label << " [" << r.failure.kind << ", "
            << r.failure.attempts << " attempt(s)]: " << r.failure.message
            << "\n";
  }
  if (o.count(serve::JobState::Interrupted) > 0) {
    out << "\nNOTE: sweep truncated (" << smc::stop_reason_name(o.stop_reason)
        << "); interrupted policies carry no results.\n";
    return kExitTruncated;
  }
  return jobs_failed > 0 ? kExitTruncated : kExitOk;
}

/// Reconstructs the SweepOutcome shape the checkpoint writer expects from a
/// Response (jobs arrive in plan order, carrying the same cache keys).
batch::SweepOutcome outcome_for_checkpoint(const serve::Response& response) {
  batch::SweepOutcome outcome;
  outcome.results.reserve(response.jobs.size());
  for (const serve::JobOutcome& job : response.jobs) {
    batch::JobResult r;
    r.label = job.label;
    r.key = job.key;
    r.completed = job.state == serve::JobState::Done;
    r.failed = job.state == serve::JobState::Failed;
    r.cancelled = job.state == serve::JobState::Cancelled;
    r.cache_hit = job.cache_hit;
    r.retries = job.retries;
    r.failure = job.failure;
    outcome.results.push_back(std::move(r));
  }
  return outcome;
}

int cmd_sweep(const Options& opt, const fmt::FaultMaintenanceTree& model,
              const std::string& model_text, std::ostream& out,
              obs::Telemetry telemetry) {
  const serve::Request request = sweep_request(opt, model_text);
  const bool wants_inspections = [&] {
    for (double f : request.frequencies)
      if (f > 0) return true;
    return false;
  }();
  if (wants_inspections && model.inspections().empty())
    throw DomainError("model has no inspection modules to sweep");
  if (opt.emit_request) {
    out << serve::encode_request(request);
    return kExitOk;
  }

  if (!opt.connect.empty()) {
    serve::ClientEvents events;
    if (telemetry.progress != nullptr) {
      events.progress = [&telemetry](const obs::Progress& p) {
        telemetry.progress->update(p);
      };
    }
    const serve::Response response =
        serve::request_over_socket(opt.connect, request, events);
    return render_sweep_response(opt, response, /*show_cache_line=*/false, out);
  }

  // In-process: the same expansion and service entry points as the daemon,
  // minus the socket. The per-plan control (SIGINT / --timeout) is bridged
  // by the wait loop below; the Session's own drain path delivers the same
  // trajectory-boundary truncation run_sweep always had.
  serve::PreparedRequest prepared = serve::prepare(request, opt.model_root);

  // The checkpoint manifest still wants a SweepPlan (for the plan id and the
  // job list); build it from the same prepared jobs the service will run.
  batch::SweepPlan plan;
  plan.threads = opt.threads;
  plan.max_retries = opt.max_retries;
  plan.stall_timeout_s = opt.stall_timeout;
  plan.jobs = prepared.jobs;

  smc::RunControl& control = interrupt_control();
  control.reset();
  if (opt.timeout > 0) control.set_timeout(opt.timeout);

  // --resume: consult the checkpoint manifest before running. The cache is
  // what actually replays completed jobs bit-identically; the manifest adds
  // plan validation and a progress preamble.
  if (opt.resume && !opt.cache_dir.empty()) {
    const std::string path = batch::checkpoint_path(opt.cache_dir);
    try {
      if (const auto cp = batch::read_checkpoint(path)) {
        if (cp->plan_id == batch::checkpoint_plan_id(plan)) {
          // done + failed + pending partition the plan: a failed job is not
          // banked (it re-runs), so it must never inflate the done total.
          const std::uint64_t done = cp->jobs_done();
          const std::uint64_t failed = cp->jobs_failed();
          out << "resuming: " << done << " of " << cp->jobs.size()
              << " jobs already completed in a previous run";
          if (failed > 0) out << ", " << failed << " failed (will re-run)";
          out << "; " << (cp->jobs.size() - done - failed) << " pending\n";
        } else {
          Diagnostic d;
          d.severity = Severity::Warning;
          d.code = "C103";
          d.message = "checkpoint in '" + opt.cache_dir +
                      "' was written by a different sweep plan; starting fresh";
          out << "fmtree: " << format_diagnostic(d) << "\n";
        }
      } else {
        out << "resuming: no checkpoint found in '" << opt.cache_dir
            << "'; starting fresh\n";
      }
    } catch (const IoError& e) {
      Diagnostic d;
      d.severity = Severity::Warning;
      d.code = "C103";
      d.message = std::string("unreadable sweep checkpoint (") + e.what() +
                  "); starting fresh";
      out << "fmtree: " << format_diagnostic(d) << "\n";
    }
  }

  serve::SessionConfig config;
  config.threads = opt.threads;
  config.queue_limit = std::max(opt.queue_limit, prepared.jobs.size());
  config.cache_dir = opt.cache_dir;
  config.model_root = opt.model_root;
  config.max_retries = opt.max_retries;
  config.stall_timeout_s = opt.stall_timeout;
  config.telemetry = telemetry;
  serve::Session session(std::move(config));
  serve::Ticket ticket = session.submit_jobs(std::move(prepared.jobs));
  while (!ticket.wait_for(0.05)) {
    if (control.should_stop(0) != smc::StopReason::None) {
      session.drain();  // resolves every ticket at the trajectory boundary
      break;
    }
  }
  serve::Response response = ticket.take();
  // The drain path reports Interrupted; the control knows the precise reason
  // (deadline vs signal), so prefer it for the truncation NOTE.
  const smc::StopReason local_reason = control.should_stop(0);
  if (response.stop_reason != smc::StopReason::None &&
      local_reason != smc::StopReason::None)
    response.stop_reason = local_reason;

  // Publish the manifest for the *next* --resume whenever a cache exists —
  // also after a truncated run, which is exactly when resume matters.
  if (!opt.cache_dir.empty())
    batch::write_checkpoint(batch::checkpoint_path(opt.cache_dir), plan,
                            outcome_for_checkpoint(response));

  return render_sweep_response(opt, response,
                               /*show_cache_line=*/!opt.cache_dir.empty(), out);
}

/// The canonical description of a fleet invocation, mirroring sweep_request:
/// corridor spec + settings, plus at most one inlined policy script.
serve::Request fleet_request(const Options& opt, const std::string& model_text) {
  serve::Request request;
  request.model_text = model_text;
  request.settings.horizon = opt.horizon;
  request.settings.trajectories = opt.runs;
  request.settings.seed = opt.seed;
  request.settings.engine = opt.engine;
  request.settings.confidence = opt.confidence;
  request.has_fleet = true;
  request.fleet.joints = static_cast<std::uint32_t>(opt.joints);
  request.fleet.seed = opt.fleet_seed;
  request.fleet.jitter = opt.jitter;
  request.fleet.coupling = opt.coupling;
  for (const std::string& path : opt.policies) {
    serve::Request::PolicyScript script;
    script.text = read_text_file(path);
    request.scripts.push_back(std::move(script));
    request.has_policy = true;
  }
  return request;
}

fleet::CorridorSpec fleet_spec(const Options& opt) {
  fleet::CorridorSpec spec;
  spec.joints = opt.joints;
  spec.seed = opt.fleet_seed;
  spec.jitter = opt.jitter;
  spec.coupling = opt.coupling;
  spec.spacing_km = opt.spacing_km;
  return spec;
}

/// Folds a served/in-process Response (jobs in corridor order) into the same
/// FleetOutcome shape fleet::analyze_fleet produces, so both executors render
/// identically and aggregate through the same exact sums.
fleet::FleetOutcome fleet_outcome_from_response(
    const fleet::Corridor& corridor, const serve::Response& response,
    const fleet::FleetOptions& options) {
  fleet::FleetOutcome o;
  o.warnings = response.warnings;
  o.truncated = response.count(serve::JobState::Interrupted) > 0;
  o.joints.reserve(corridor.joints.size());
  for (std::size_t i = 0; i < corridor.joints.size(); ++i) {
    fleet::JointSummary s;
    s.name = corridor.joints[i].name;
    s.scale = corridor.joints[i].scale;
    if (i < response.jobs.size()) {
      const serve::JobOutcome& job = response.jobs[i];
      if (job.state == serve::JobState::Done) {
        s.report = job.report;
        job.cache_hit ? ++o.cache_hits : ++o.cache_misses;
      } else if (job.state == serve::JobState::Failed) {
        ++o.jobs_failed;
        Diagnostic d;
        d.severity = Severity::Warning;
        d.code = "F101";
        d.message = "fleet shard '" + s.name + "' failed [" + job.failure.kind +
                    "]: " + job.failure.message;
        d.hint = "the joint is excluded from the corridor aggregates";
        o.warnings.push_back(std::move(d));
      }
    }
    o.joints.push_back(std::move(s));
  }
  o.kpis = fleet::aggregate_fleet(corridor, o.joints, options);
  return o;
}

int render_fleet(const Options& opt, const fleet::Corridor& corridor,
                 const fleet::FleetOutcome& o, bool show_cache_line,
                 std::ostream& out) {
  const fleet::FleetKpis& k = o.kpis;
  out << "corridor: " << corridor.joints.size() << " joints over "
      << cell(corridor.length_km(), 1) << " km (jitter " << corridor.spec.jitter
      << ", coupling " << corridor.spec.coupling << ", fleet seed "
      << corridor.spec.seed << ")\n";
  out << "fleet KPIs over " << opt.horizon << " time units (" << opt.runs
      << " runs per joint, " << k.joints << "/" << corridor.joints.size()
      << " joints analysed):\n";
  out << "  failures:     " << cell(k.failures_per_year, 4) << " / time unit\n";
  out << "  cost:         " << cell(k.cost_per_year, 2) << " / time unit ("
      << cell(k.cost_per_km_year, 2) << " per km)\n";
  out << "  crew demand:  " << cell(k.crew_visits_per_year, 1) << " visits vs "
      << cell(k.crew_capacity_per_year, 1) << " capacity (" << opt.crews
      << " crews) = " << cell(100.0 * k.crew_utilisation, 1)
      << "% utilisation\n";
  if (k.budget_per_year > 0)
    out << "  budget:       " << cell(k.cost_per_year, 2) << " spent of "
        << cell(k.budget_per_year, 2) << " / time unit = "
        << cell(100.0 * k.budget_utilisation, 1) << "% utilisation\n";
  if (!k.worst.empty()) {
    out << "\nworst " << k.worst.size() << " joints by expected failures:\n";
    TextTable t({"joint", "lifetime scale", "failures / time unit",
                 "cost / time unit"});
    for (std::size_t i : k.worst) {
      const fleet::JointSummary& j = o.joints[i];
      t.add_row({j.name, cell(j.scale, 3), ci(j.report.failures_per_year, 5),
                 ci(j.report.cost_per_year, 2)});
    }
    t.print(out);
  }
  if (show_cache_line)
    out << "cache: " << o.cache_hits << " hits, " << o.cache_misses
        << " misses (" << opt.cache_dir << ")\n";
  for (const Diagnostic& d : o.warnings)
    out << "fmtree: " << format_diagnostic(d) << "\n";
  if (o.jobs_failed > 0)
    out << "\nNOTE: " << o.jobs_failed
        << " joint(s) failed permanently and are excluded from the corridor "
           "aggregates.\n";
  if (o.truncated) {
    out << "\nNOTE: fleet analysis truncated; aggregates cover the completed "
           "joints only.\n";
    return kExitTruncated;
  }
  return o.jobs_failed > 0 ? kExitTruncated : kExitOk;
}

/// `fleet --calibrate <csv>`: one streaming pass over the incident database
/// (O(1) memory however many records), then the per-mode Garwood rate table.
int cmd_fleet_calibrate(const Options& opt, std::ostream& out) {
  const data::IncidentScan scan = data::scan_incidents(opt.calibrate_path);
  out << "incident scan: " << scan.records << " records, "
      << scan.counts_by_mode.size() << " failure mode(s) (streamed from '"
      << opt.calibrate_path << "')\n";
  const std::vector<data::ModeRate> rates = data::estimate_mode_rates(
      scan, static_cast<std::uint32_t>(opt.joints), opt.observe_years,
      opt.confidence);
  out << "per-mode failure rates over " << opt.joints << " joints x "
      << opt.observe_years << " time units (" << opt.confidence * 100
      << "% CIs):\n";
  TextTable t({"failure mode", "events", "rate / joint-time unit", "CI"});
  for (const data::ModeRate& r : rates)
    t.add_row({r.mode, std::to_string(r.rate.events), cell(r.rate.rate, 6),
               "[" + cell(r.rate.lo, 6) + ", " + cell(r.rate.hi, 6) + "]"});
  t.print(out);
  return kExitOk;
}

/// `fleet --generate-incidents <csv>`: simulate the fleet under the model's
/// own maintenance policy and stream the incident database out through the
/// byte-identical-to-save_csv writer.
int cmd_fleet_generate(const Options& opt, const fmt::FaultMaintenanceTree& model,
                       std::ostream& out) {
  const data::IncidentDatabase db = data::generate_incidents(
      model, static_cast<std::uint32_t>(opt.joints), opt.observe_years,
      opt.fleet_seed);
  data::IncidentStreamWriter writer(opt.generate_incidents_path);
  for (const data::IncidentRecord& r : db.records()) writer.add(r);
  writer.close();
  out << "generated " << writer.written() << " incident(s) from " << opt.joints
      << " joints x " << opt.observe_years << " time units into '"
      << opt.generate_incidents_path << "'\n";
  return kExitOk;
}

int cmd_fleet(const Options& opt, const fmt::FaultMaintenanceTree& model,
              const std::string& model_text, std::ostream& out,
              obs::Telemetry telemetry) {
  if (!opt.calibrate_path.empty()) return cmd_fleet_calibrate(opt, out);
  if (!opt.generate_incidents_path.empty())
    return cmd_fleet_generate(opt, model, out);

  const serve::Request request = fleet_request(opt, model_text);
  if (opt.emit_request) {
    out << serve::encode_request(request);
    return kExitOk;
  }

  // The corridor is regenerated locally in full (including the render-side
  // spacing the request schema deliberately omits); the jobs the daemon
  // expands from the request are bit-identical to the local plan's.
  const fleet::Corridor corridor = fleet::generate_corridor(model, fleet_spec(opt));
  fleet::FleetOptions options;
  options.settings = request.settings;
  options.resources.crews = opt.crews;
  options.worst_k = opt.worst_k;
  options.threads = opt.threads;
  options.max_retries = opt.max_retries;
  options.stall_timeout_s = opt.stall_timeout;
  if (!request.scripts.empty()) {
    // The jobs get the compiled policy through prepare(); this copy only
    // feeds the render-side budget KPI of the aggregator.
    Diagnostics diags;
    std::optional<lang::CompiledPolicy> compiled =
        lang::compile_policy(request.scripts.front().text, diags);
    if (!compiled) throw serve::RequestError("R114", diags.all());
    options.policy =
        std::make_shared<const lang::CompiledPolicy>(*std::move(compiled));
  }

  const auto finish = [&](const serve::Response& response, bool show_cache) {
    const fleet::FleetOutcome o =
        fleet_outcome_from_response(corridor, response, options);
    if (telemetry.metrics != nullptr) {
      obs::MetricsRegistry& m = *telemetry.metrics;
      m.add(m.counter("fleet.joints"), corridor.joints.size());
      m.add(m.counter("fleet.cache_hits"), o.cache_hits);
      m.add(m.counter("fleet.cache_misses"), o.cache_misses);
      m.add(m.counter("fleet.jobs_failed"), o.jobs_failed);
    }
    return render_fleet(opt, corridor, o, show_cache, out);
  };

  if (!opt.connect.empty()) {
    serve::ClientEvents events;
    if (telemetry.progress != nullptr) {
      events.progress = [&telemetry](const obs::Progress& p) {
        telemetry.progress->update(p);
      };
    }
    const serve::Response response =
        serve::request_over_socket(opt.connect, request, events);
    return finish(response, /*show_cache=*/false);
  }

  // In-process: the same expansion and service entry points as the daemon,
  // minus the socket (the cmd_sweep pattern).
  serve::PreparedRequest prepared = serve::prepare(request, opt.model_root);
  smc::RunControl& control = interrupt_control();
  control.reset();
  if (opt.timeout > 0) control.set_timeout(opt.timeout);

  serve::SessionConfig config;
  config.threads = opt.threads;
  config.queue_limit = std::max(opt.queue_limit, prepared.jobs.size());
  config.cache_dir = opt.cache_dir;
  config.model_root = opt.model_root;
  config.max_retries = opt.max_retries;
  config.stall_timeout_s = opt.stall_timeout;
  config.telemetry = telemetry;
  serve::Session session(std::move(config));
  serve::Ticket ticket = session.submit_jobs(std::move(prepared.jobs));
  while (!ticket.wait_for(0.05)) {
    if (control.should_stop(0) != smc::StopReason::None) {
      session.drain();
      break;
    }
  }
  const serve::Response response = ticket.take();
  return finish(response, /*show_cache=*/!opt.cache_dir.empty());
}

int cmd_serve(const Options& opt, std::ostream& out, obs::Telemetry telemetry) {
  serve::SessionConfig config;
  config.threads = opt.threads;
  config.queue_limit = opt.queue_limit;
  config.cache_dir = opt.cache_dir;
  config.model_root = opt.model_root;
  config.max_retries = opt.max_retries;
  config.stall_timeout_s = opt.stall_timeout;
  config.telemetry = telemetry;
  serve::Session session(std::move(config));

  // SIGINT/SIGTERM (wired in main()) and --timeout stop the accept loop;
  // Server::run then drains the session and joins every connection.
  smc::RunControl& control = interrupt_control();
  control.reset();
  if (opt.timeout > 0) control.set_timeout(opt.timeout);

  serve::ServerConfig server_config;
  server_config.socket_path = opt.socket_path;
  server_config.stop = &control;
  serve::Server server(session, server_config);
  out << "fmtree serve: listening on '" << opt.socket_path << "' ("
      << (opt.cache_dir.empty() ? std::string("memory cache")
                                : "cache dir " + opt.cache_dir)
      << ", queue limit " << opt.queue_limit << ")\n"
      << std::flush;
  server.run();
  out << "fmtree serve: drained, exiting\n";
  return kExitOk;
}

int cmd_dot(const fmt::FaultMaintenanceTree& model, std::ostream& out) {
  out << ft::to_dot(model.structure(), model.name(model.top()));
  return 0;
}

int cmd_cutsets(const Options& opt, const fmt::FaultMaintenanceTree& model,
                std::ostream& out) {
  const ft::FaultTree& tree = model.structure();
  const auto cuts = ft::minimal_cut_sets(tree);
  out << cuts.size() << " minimal cut sets:\n";
  for (const auto& cut : cuts) {
    out << "  {";
    for (std::size_t i = 0; i < cut.size(); ++i)
      out << (i ? ", " : " ") << tree.basic(tree.basic_events()[cut[i]]).name;
    out << " }\n";
  }
  out << "\nstatic top-event probability at t=" << opt.horizon << ": "
      << cell(ft::top_event_probability(tree, opt.horizon), 8)
      << "  (maintenance ignored)\n\nimportance measures:\n";
  TextTable t({"leaf", "P(fail)", "Birnbaum", "Fussell-Vesely", "criticality"});
  for (const ft::Importance& imp : ft::importance_measures(tree, opt.horizon))
    t.add_row({imp.name, cell(imp.probability, 4), cell(imp.birnbaum, 4),
               cell(imp.fussell_vesely, 4), cell(imp.criticality, 4)});
  t.print(out);
  return 0;
}

}  // namespace

int run_on_text(const Options& options, const std::string& model_text,
                std::ostream& out) {
  // --inject-fault armings live exactly as long as the command; sites armed
  // via FMTREE_FAULTS (registry construction) are left untouched.
  const fault::Scope fault_scope(options.inject_faults);
  const TelemetrySession session(options);
  auto parse_span = obs::maybe_span(session.tracer(), "parse");
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(model_text);
  parse_span.close();
  const auto dispatch = [&] {
    switch (options.command) {
      case Command::Check: return cmd_check(model, out);
      case Command::Analyze:
        return cmd_analyze(options, model, out, session.handles());
      case Command::Exact: return cmd_exact(options, model, out, session.handles());
      case Command::Dot: return cmd_dot(model, out);
      case Command::CutSets: return cmd_cutsets(options, model, out);
      case Command::Sweep:
        return cmd_sweep(options, model, model_text, out, session.handles());
      case Command::Fleet:
        return cmd_fleet(options, model, model_text, out, session.handles());
      case Command::Compare:
        throw DomainError("compare needs two models; use run_compare");
      case Command::LintPolicy:
        // Dispatched in main_impl (no model file); unreachable here.
        throw DomainError("lint-policy takes policy scripts, not a model");
      case Command::Serve:
        // Dispatched in main_impl (no model file); unreachable here.
        throw DomainError("serve takes a socket path, not a model");
    }
    throw DomainError("unhandled command");
  };
  const int code = dispatch();
  session.write_files();
  return code;
}

int run_compare(const Options& options, const std::string& model_a_text,
                const std::string& model_b_text, std::ostream& out) {
  const TelemetrySession session(options);
  auto parse_span = obs::maybe_span(session.tracer(), "parse");
  const fmt::FaultMaintenanceTree a = fmt::parse_fmt(model_a_text);
  const fmt::FaultMaintenanceTree b = fmt::parse_fmt(model_b_text);
  parse_span.close();
  smc::AnalysisSettings s;
  s.horizon = options.horizon;
  s.trajectories = options.runs;
  s.seed = options.seed;
  s.threads = options.threads;
  s.engine = options.engine;
  s.confidence = options.confidence;
  s.telemetry = session.handles();
  const smc::PairedComparison cmp = smc::compare_models(a, b, s);
  out << "paired comparison (common random numbers, " << cmp.trajectories
      << " runs; positive = first model higher):\n";
  TextTable t({"difference (A - B)", "estimate", "CI", "significant"});
  const auto row = [&](const char* label, const ConfidenceInterval& c) {
    t.add_row({label, cell(c.point, 4),
               "[" + cell(c.lo, 4) + ", " + cell(c.hi, 4) + "]",
               c.contains(0.0) ? "no" : "YES"});
  };
  row("failures", cmp.failures_diff);
  row("total cost", cmp.cost_diff);
  row("downtime", cmp.downtime_diff);
  t.print(out);
  session.write_files();
  return 0;
}

namespace {

/// Renders a failure on `err` — one line per diagnostic, or a JSON array
/// with --json-errors — and returns the exit code. Exceptions that carry no
/// diagnostic list are wrapped in a single synthetic diagnostic so the JSON
/// channel always has the same shape.
int report_failure(const Options& opt, std::ostream& err,
                   std::vector<Diagnostic> diags, int code) {
  if (opt.json_errors) {
    Diagnostics sink;
    for (Diagnostic& d : diags) sink.add(std::move(d));
    err << sink.to_json() << "\n";
  } else {
    for (const Diagnostic& d : diags)
      err << "fmtree: " << format_diagnostic(d) << "\n";
  }
  return code;
}

/// `fmtree lint-policy <script>...`: compile every script with the
/// error-recovery parser and report all diagnostics (text on stderr with a
/// file prefix, or one aggregated JSON array with --json-errors). Exit code
/// kExitDiagnostics when any script fails, kExitOk otherwise — so CI can
/// gate a whole corpus with a single invocation.
int cmd_lint_policy(const Options& opt, std::ostream& out, std::ostream& err) {
  Diagnostics sink;  // aggregate across files for the JSON channel
  bool any_failed = false;
  for (const std::string& path : opt.policies) {
    std::string source;
    try {
      source = read_text_file(path);
    } catch (const IoError& e) {
      any_failed = true;
      Diagnostic d = diagnostic_from(e, "U101");
      out << path << ": FAILED (unreadable)\n";
      if (opt.json_errors) sink.add(std::move(d));
      else err << path << ": " << format_diagnostic(d) << "\n";
      continue;
    }
    Diagnostics diags;
    const std::optional<lang::CompiledPolicy> compiled =
        lang::compile_policy(source, diags);
    for (const Diagnostic& d : diags.all()) {
      if (opt.json_errors) sink.add(d);
      else err << path << ":" << format_diagnostic(d) << "\n";
    }
    if (compiled.has_value()) {
      out << path << ": OK  policy '" << compiled->name << "' ("
          << compiled->calendars.size() << " calendar(s), "
          << compiled->statements.size() << " statement(s), "
          << compiled->budgets.size() << " budget(s)";
      if (diags.empty()) out << ")\n";
      else out << ", " << diags.all().size() << " warning(s))\n";
    } else {
      any_failed = true;
      out << path << ": FAILED (" << diags.error_count() << " error(s))\n";
    }
  }
  if (opt.json_errors && !sink.empty()) err << sink.to_json() << "\n";
  return any_failed ? kExitDiagnostics : kExitOk;
}

}  // namespace

int main_impl(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  Options options;
  try {
    options = parse_args(args);
  } catch (const Error& e) {
    // Usage errors precede flag parsing, so they are always plain text.
    err << "fmtree: " << e.what() << "\n";
    return kExitUsage;
  }
  try {
    if (options.command == Command::LintPolicy) {
      // No model file: the positional arguments are policy scripts.
      return cmd_lint_policy(options, out, err);
    }
    if (options.command == Command::Serve) {
      // No model file: the daemon reads models from requests / --model-root.
      const fault::Scope fault_scope(options.inject_faults);
      const TelemetrySession session(options);
      const int code = cmd_serve(options, out, session.handles());
      session.write_files();
      return code;
    }
    const auto read_file = [](const std::string& path) {
      std::ifstream file(path);
      if (!file) throw IoError("cannot open '" + path + "'");
      std::ostringstream text;
      text << file.rdbuf();
      return text.str();
    };
    if (options.command == Command::Compare) {
      return run_compare(options, read_file(options.model_path),
                         read_file(options.model_path_b), out);
    }
    return run_on_text(options, read_file(options.model_path), out);
  } catch (const ParseErrors& e) {
    return report_failure(options, err, e.diagnostics(), kExitDiagnostics);
  } catch (const ModelErrors& e) {
    return report_failure(options, err, e.diagnostics(), kExitDiagnostics);
  } catch (const ParseError& e) {
    return report_failure(options, err, {diagnostic_from(e)}, kExitDiagnostics);
  } catch (const ModelError& e) {
    return report_failure(options, err, {diagnostic_from(e, "M104")}, kExitDiagnostics);
  } catch (const ResourceLimitError& e) {
    return report_failure(options, err, {diagnostic_from(e, "R101")},
                          kExitResourceLimit);
  } catch (const serve::AdmissionError& e) {
    // R120: the daemon's queue is full — a resource limit, not a bad request.
    return report_failure(options, err, e.diagnostics(), kExitResourceLimit);
  } catch (const serve::RequestError& e) {
    // Stable R-code -> exit-code mapping (DESIGN.md, "Failure semantics"):
    // R113 carries model diagnostics, R114 policy-script diagnostics, R122
    // is an internal server failure, everything else (R110/R111/R112/R121)
    // is bad usage/transport.
    const int code = e.code() == "R113"   ? kExitDiagnostics
                     : e.code() == "R114" ? kExitDiagnostics
                     : e.code() == "R122" ? kExitInternal
                                          : kExitUsage;
    return report_failure(options, err, e.diagnostics(), code);
  } catch (const Error& e) {
    // IoError, DomainError, UnsupportedModelError: bad input to a valid
    // command — same exit code as a usage error.
    return report_failure(options, err, {diagnostic_from(e, "U101")}, kExitUsage);
  } catch (const std::exception& e) {
    Diagnostic d;
    d.code = "X101";
    d.message = std::string("internal error: ") + e.what();
    return report_failure(options, err, {d}, kExitInternal);
  }
}

std::string usage() {
  return
      "usage: fmtree <command> <model.fmt> [options]\n"
      "commands:\n"
      "  check     parse and validate, print a model summary\n"
      "  analyze   Monte-Carlo KPI report (reliability, failures, cost, ...)\n"
      "  exact     exact CTMC results (Markovian models only)\n"
      "  dot       Graphviz of the tree structure\n"
      "  cutsets   minimal cut sets and importance measures\n"
      "  compare   paired A/B comparison of two models (common random numbers)\n"
      "  sweep     evaluate the model across inspection frequencies (cost curve)\n"
      "  fleet     corridor of N joints from one base model: per-joint shards\n"
      "            through the shared pool, corridor KPIs + crew utilisation\n"
      "  lint-policy  compile maintenance-policy scripts (fmtree lint-policy\n"
      "            <script>...), report L1xx diagnostics; exit 3 on errors\n"
      "  serve     analysis daemon on a local socket (fmtree serve <socket>);\n"
      "            speaks fmtree.request/v1 / fmtree.response/v1 NDJSON\n"
      "options:\n"
      "  --horizon <t>      analysis horizon (default 10)\n"
      "  --runs <n>         Monte-Carlo trajectories (default 10000)\n"
      "  --seed <n>         RNG seed (default 1)\n"
      "  --threads <n>      worker threads (default: all cores)\n"
      "  --engine <name>    trajectory kernel: scalar | batch (default:\n"
      "                     FMTREE_ENGINE env var, else scalar)\n"
      "  --confidence <p>   CI level (default 0.95)\n"
      "  --quantiles <l>    comma-separated TTF quantiles, e.g. 0.1,0.5,0.9\n"
      "  --timeout <s>      wall-clock budget in seconds; on expiry analyze\n"
      "                     reports the completed prefix (exit code 1)\n"
      "  --state-cap <n>    CTMC state-space cap for exact (default 2^20)\n"
      "  --no-fallback      fail exact on a resource limit instead of\n"
      "                     falling back to Monte-Carlo\n"
      "  --json-errors      report failures as a JSON diagnostic array\n"
      "  --metrics <file>   write engine metrics as JSON (fmtree.metrics/v1)\n"
      "  --trace <file>     write phase spans as JSON (fmtree.trace/v1);\n"
      "                     chrome:<file> writes Chrome trace_event format\n"
      "  --progress         print throttled progress lines while running\n"
      "  --frequencies <l>  sweep: comma-separated inspections per time unit,\n"
      "                     0 = none (default 0,0.5,1,2,3,4,6,8,12,24)\n"
      "  --policy <file>    sweep: add a scripted maintenance-policy candidate\n"
      "                     (repeatable); without an explicit --frequencies,\n"
      "                     only the scripted candidates are evaluated\n"
      "  --cache-dir <dir>  sweep: content-addressed result cache directory;\n"
      "                     repeated runs reuse bit-identical results\n"
      "  --resume           sweep: resume from the checkpoint in --cache-dir;\n"
      "                     completed jobs replay bit-identically from cache\n"
      "  --max-retries <n>  sweep: retry budget per job for transient\n"
      "                     failures (default 2)\n"
      "  --stall-timeout <s> sweep: stop with a diagnostic if no progress\n"
      "                     for <s> seconds (default: off)\n"
      "  --connect <sock>   sweep/fleet: run as a client of the daemon at\n"
      "                     <sock> instead of in-process (bit-identical output)\n"
      "  --emit-request     sweep/fleet: print the fmtree.request/v1 document\n"
      "                     this invocation describes and exit\n"
      "  --joints <n>       fleet: corridor size (default 50)\n"
      "  --fleet-seed <n>   fleet: corridor generation seed, independent of\n"
      "                     the analysis --seed (default 0)\n"
      "  --jitter <x>       fleet: lognormal per-joint lifetime spread\n"
      "                     (default 0.1; 0 = identical joints)\n"
      "  --coupling <x>     fleet: neighbour load-coupling strength (default 0)\n"
      "  --spacing-km <x>   fleet: track distance between joints (default 1)\n"
      "  --crews <n>        fleet: shared maintenance crews (default 2)\n"
      "  --worst <n>        fleet: size of the worst-joints table (default 5)\n"
      "  --calibrate <csv>  fleet: stream an incident database (O(1) memory)\n"
      "                     and print per-mode Garwood rates; needs\n"
      "                     --observe-years, exposure = joints x years\n"
      "  --generate-incidents <csv>  fleet: simulate the fleet and stream an\n"
      "                     incident database to <csv>; needs --observe-years\n"
      "  --observe-years <t> fleet: observation window for the two above\n"
      "  --queue-limit <n>  serve: max outstanding jobs before requests are\n"
      "                     rejected with R120 (default 64)\n"
      "  --model-root <dir> serve: directory model refs resolve in\n"
      "                     (default 'models')\n"
      "  --inject-fault <f> arm a fault site for this run (testing), e.g.\n"
      "                     cache.write:error,p=0.05,seed=7; repeatable\n"
      "exit codes: 0 ok, 1 truncated run, 2 usage/input error,\n"
      "            3 parse/validation diagnostics, 4 resource limit,\n"
      "            5 internal error\n";
}

}  // namespace fmtree::cli
