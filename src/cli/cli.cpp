#include "cli/cli.hpp"

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <sstream>

#include "analytic/fmt2ctmc.hpp"
#include "analytic/solvers.hpp"
#include "batch/checkpoint.hpp"
#include "batch/result_cache.hpp"
#include "batch/sweep.hpp"
#include "fmt/parser.hpp"
#include "ft/cutsets.hpp"
#include "ft/dot.hpp"
#include "ft/bdd.hpp"
#include "ft/importance.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "smc/compare.hpp"
#include "smc/kpi.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/table.hpp"

namespace fmtree::cli {

smc::RunControl& interrupt_control() {
  static smc::RunControl control;
  return control;
}

namespace {

double parse_double(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  double value = 0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw DomainError("invalid " + what + ": '" + text + "'");
  }
  if (used != text.size()) throw DomainError("invalid " + what + ": '" + text + "'");
  return value;
}

std::uint64_t parse_count(const std::string& text, const std::string& what) {
  const double v = parse_double(text, what);
  if (v < 0 || v != std::floor(v))
    throw DomainError(what + " must be a nonnegative integer");
  return static_cast<std::uint64_t>(v);
}

std::vector<double> parse_quantiles(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double q = parse_double(item, "quantile");
    if (!(q >= 0 && q <= 1)) throw DomainError("quantiles must lie in [0,1]");
    out.push_back(q);
  }
  if (out.empty()) throw DomainError("empty quantile list");
  return out;
}

std::vector<double> parse_frequencies(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const double f = parse_double(item, "frequency");
    if (!(f >= 0) || !std::isfinite(f))
      throw DomainError("frequencies must be finite and >= 0");
    out.push_back(f);
  }
  if (out.empty()) throw DomainError("empty frequency list");
  return out;
}

}  // namespace

Options parse_args(const std::vector<std::string>& args) {
  if (args.empty()) throw DomainError("missing command\n" + usage());
  Options opt;
  const std::string& cmd = args[0];
  if (cmd == "check") opt.command = Command::Check;
  else if (cmd == "analyze") opt.command = Command::Analyze;
  else if (cmd == "exact") opt.command = Command::Exact;
  else if (cmd == "dot") opt.command = Command::Dot;
  else if (cmd == "cutsets") opt.command = Command::CutSets;
  else if (cmd == "compare") opt.command = Command::Compare;
  else if (cmd == "sweep") opt.command = Command::Sweep;
  else throw DomainError("unknown command '" + cmd + "'\n" + usage());

  // Flags and positional model paths may interleave in any order.
  std::vector<std::string> positional;
  for (std::size_t i = 1; i < args.size();) {
    const std::string& flag = args[i++];
    if (!flag.starts_with("--")) {
      positional.push_back(flag);
      continue;
    }
    auto value = [&]() -> const std::string& {
      if (i >= args.size()) throw DomainError("flag " + flag + " needs a value");
      return args[i++];
    };
    if (flag == "--horizon") opt.horizon = parse_double(value(), "horizon");
    else if (flag == "--runs") opt.runs = parse_count(value(), "runs");
    else if (flag == "--seed") opt.seed = parse_count(value(), "seed");
    else if (flag == "--threads")
      opt.threads = static_cast<unsigned>(parse_count(value(), "threads"));
    else if (flag == "--engine") {
      const std::string& name = value();
      if (name == "scalar") opt.engine = Engine::Scalar;
      else if (name == "batch") opt.engine = Engine::Batch;
      else throw DomainError("--engine must be 'scalar' or 'batch'");
    }
    else if (flag == "--confidence") opt.confidence = parse_double(value(), "confidence");
    else if (flag == "--quantiles") opt.quantiles = parse_quantiles(value());
    else if (flag == "--timeout") opt.timeout = parse_double(value(), "timeout");
    else if (flag == "--state-cap") opt.state_cap = parse_count(value(), "state cap");
    else if (flag == "--json-errors") opt.json_errors = true;
    else if (flag == "--no-fallback") opt.no_fallback = true;
    else if (flag == "--metrics") opt.metrics_path = value();
    else if (flag == "--trace") opt.trace_path = value();
    else if (flag == "--progress") opt.progress = true;
    else if (flag == "--frequencies") opt.frequencies = parse_frequencies(value());
    else if (flag == "--cache-dir") opt.cache_dir = value();
    else if (flag == "--resume") opt.resume = true;
    else if (flag == "--max-retries")
      opt.max_retries = static_cast<std::uint32_t>(parse_count(value(), "retries"));
    else if (flag == "--stall-timeout")
      opt.stall_timeout = parse_double(value(), "stall timeout");
    else if (flag == "--inject-fault") {
      const std::string& spec = value();
      fault::parse_fault_spec(spec);  // validate now: usage error, not runtime
      opt.inject_faults.push_back(spec);
    }
    else throw DomainError("unknown flag '" + flag + "'\n" + usage());
  }
  const std::size_t want = opt.command == Command::Compare ? 2u : 1u;
  if (positional.empty())
    throw DomainError("missing model file\n" + usage());
  if (positional.size() < want)
    throw DomainError("compare needs two model files\n" + usage());
  if (positional.size() > want)
    throw DomainError("unexpected argument '" + positional[want] + "'\n" + usage());
  opt.model_path = positional[0];
  if (opt.command == Command::Compare) opt.model_path_b = positional[1];
  if (!(opt.horizon > 0)) throw DomainError("--horizon must be positive");
  if (opt.runs == 0) throw DomainError("--runs must be positive");
  if (!(opt.confidence > 0 && opt.confidence < 1))
    throw DomainError("--confidence must lie in (0,1)");
  if (!(opt.timeout >= 0)) throw DomainError("--timeout must be nonnegative");
  if (opt.state_cap == 0) throw DomainError("--state-cap must be positive");
  if (!(opt.stall_timeout >= 0))
    throw DomainError("--stall-timeout must be nonnegative");
  if (opt.resume && opt.cache_dir.empty())
    throw DomainError("--resume needs --cache-dir (the checkpoint lives there)");
  return opt;
}

namespace {

std::string ci(const ConfidenceInterval& c, int decimals) {
  return cell(c.point, decimals) + " [" + cell(c.lo, decimals) + ", " +
         cell(c.hi, decimals) + "]";
}

/// One progress line, throttled by the reporter. Quantities that do not
/// apply to the current phase (ETA before a rate exists, CI before two
/// batches, residual outside solve) are simply omitted.
void print_progress(std::ostream& out, const obs::Progress& p) {
  out << "progress: " << p.phase << " " << p.done;
  if (p.total > 0) {
    out << "/" << p.total << " ("
        << static_cast<int>(100.0 * static_cast<double>(p.done) /
                            static_cast<double>(p.total))
        << "%)";
  }
  if (p.rate > 0) out << "  " << cell(p.rate, 0) << "/s";
  if (p.eta_seconds >= 0) out << "  ETA " << cell(p.eta_seconds, 1) << "s";
  if (p.ci_half_width >= 0) {
    out << "  rel.CI " << cell(p.ci_half_width, 4);
    if (p.ci_target > 0) out << " (target " << cell(p.ci_target, 4) << ")";
  }
  if (p.residual >= 0) out << "  residual " << cell(p.residual, 10);
  out << "\n" << std::flush;
}

/// The telemetry sinks of one CLI invocation, created from the --metrics /
/// --trace / --progress flags. Commands run with handles() wired into their
/// settings; write_files() exports afterwards — also for a truncated run,
/// whose telemetry is exactly what one wants to inspect.
struct TelemetrySession {
  explicit TelemetrySession(const Options& opt) : opt_(opt) {
    if (!opt.metrics_path.empty()) metrics_ = std::make_unique<obs::MetricsRegistry>();
    if (!opt.trace_path.empty()) tracer_ = std::make_unique<obs::Tracer>();
    if (opt.progress) {
      std::ostream* sink =
          opt.progress_stream != nullptr ? opt.progress_stream : &std::cerr;
      progress_ = std::make_unique<obs::ProgressReporter>(
          [sink](const obs::Progress& p) { print_progress(*sink, p); },
          /*min_interval_seconds=*/1.0);
    }
  }

  obs::Telemetry handles() const noexcept {
    return {metrics_.get(), tracer_.get(), progress_.get()};
  }

  obs::Tracer* tracer() const noexcept { return tracer_.get(); }

  void write_files() const {
    if (metrics_) write(opt_.metrics_path, metrics_->to_json());
    if (tracer_) {
      constexpr std::string_view kChrome = "chrome:";
      if (opt_.trace_path.starts_with(kChrome)) {
        write(opt_.trace_path.substr(kChrome.size()), tracer_->to_chrome_trace());
      } else {
        write(opt_.trace_path, tracer_->to_json());
      }
    }
  }

private:
  static void write(const std::string& path, const std::string& content) {
    std::ofstream file(path);
    file << content << "\n";
    if (!file) throw IoError("cannot write '" + path + "'");
  }

  const Options& opt_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::ProgressReporter> progress_;
};

int cmd_check(const fmt::FaultMaintenanceTree& model, std::ostream& out) {
  out << "model OK\n"
      << "  top event:           " << model.name(model.top()) << "\n"
      << "  leaves:              " << model.num_ebes() << "\n"
      << "  gates:               " << model.structure().gates().size() << "\n"
      << "  rate dependencies:   " << model.rdeps().size() << "\n"
      << "  functional deps:     " << model.fdeps().size() << "\n"
      << "  inspection modules:  " << model.inspections().size() << "\n"
      << "  replacement modules: " << model.replacements().size() << "\n"
      << "  corrective:          " << (model.corrective().enabled ? "on" : "off") << "\n"
      << "  markovian (exact analysable): " << (model.is_markovian() ? "yes" : "no")
      << "\n";
  return 0;
}

int cmd_analyze(const Options& opt, const fmt::FaultMaintenanceTree& model,
                std::ostream& out, obs::Telemetry telemetry) {
  smc::AnalysisSettings s;
  s.horizon = opt.horizon;
  s.trajectories = opt.runs;
  s.seed = opt.seed;
  s.threads = opt.threads;
  s.engine = opt.engine;
  s.confidence = opt.confidence;
  s.telemetry = telemetry;
  // The process-wide handle lets a SIGINT (wired up in main()) or --timeout
  // stop the run between trajectories; the report then covers the completed
  // prefix exactly. reset() clears state left by a previous run in-process.
  smc::RunControl& control = interrupt_control();
  control.reset();
  if (opt.timeout > 0) control.set_timeout(opt.timeout);
  s.control = &control;
  const smc::KpiReport k = smc::analyze(model, s);
  out << "KPIs over " << opt.horizon << " time units (" << k.trajectories
      << " runs, " << opt.confidence * 100 << "% CIs):\n";
  TextTable t({"KPI", "value"});
  t.add_row({"reliability", ci(k.reliability, 5)});
  t.add_row({"expected failures", ci(k.expected_failures, 4)});
  t.add_row({"failures / time unit", ci(k.failures_per_year, 5)});
  t.add_row({"availability", ci(k.availability, 6)});
  t.add_row({"total cost", ci(k.total_cost, 1)});
  t.add_row({"cost / time unit", ci(k.cost_per_year, 2)});
  t.print(out);

  out << "\ncost breakdown (per time unit):\n";
  const fmt::CostBreakdown py = k.mean_cost / opt.horizon;
  TextTable c({"component", "value"});
  c.add_row({"inspections", cell(py.inspection, 2)});
  c.add_row({"repairs", cell(py.repair, 2)});
  c.add_row({"replacements", cell(py.replacement, 2)});
  c.add_row({"corrective", cell(py.corrective, 2)});
  c.add_row({"downtime", cell(py.downtime, 2)});
  c.print(out);

  out << "\nfailure attribution (expected failures per run):\n";
  TextTable a({"leaf", "failures", "repairs"});
  for (std::size_t i = 0; i < model.num_ebes(); ++i)
    a.add_row({model.ebes()[i].name, cell(k.failures_per_leaf[i], 4),
               cell(k.repairs_per_leaf[i], 3)});
  a.print(out);

  // A truncated run already consumed the stop signal; launching the quantile
  // batch would just truncate again at zero trajectories, so skip it.
  if (!opt.quantiles.empty() && !k.truncated) {
    const auto q = smc::failure_time_quantiles(model, opt.quantiles, s);
    out << "\ntime-to-failure quantiles:\n";
    TextTable qt({"p", "t"});
    for (std::size_t i = 0; i < q.size(); ++i)
      qt.add_row({cell(opt.quantiles[i], 3),
                  std::isinf(q[i]) ? "> horizon" : cell(q[i], 3)});
    qt.print(out);
  }
  if (k.truncated) {
    out << "\nNOTE: run truncated (" << smc::stop_reason_name(k.stop_reason)
        << ") after " << k.trajectories << " of " << opt.runs
        << " trajectories; statistics are exact over that prefix.\n";
    return kExitTruncated;
  }
  return kExitOk;
}

int cmd_exact(const Options& opt, const fmt::FaultMaintenanceTree& model,
              std::ostream& out, obs::Telemetry telemetry) {
  try {
    // Compute everything before printing so a state-cap overflow on any of
    // the three queries yields a clean fallback instead of a partial report.
    const double unrel =
        analytic::exact_unreliability(model, opt.horizon, opt.state_cap);
    analytic::SolverOptions solver;
    solver.telemetry = telemetry;
    const double mttf = analytic::exact_mttf(model, opt.state_cap, solver);
    const bool renewal = model.corrective().enabled && model.corrective().delay == 0.0;
    const double failures =
        renewal ? analytic::exact_expected_failures(model, opt.horizon, opt.state_cap)
                : 0.0;
    out << "exact CTMC analysis (uniformization):\n";
    out << "  P(failure within " << opt.horizon << ") = " << cell(unrel, 8) << "\n";
    out << "  MTTF = " << cell(mttf, 6) << "\n";
    if (renewal) {
      out << "  E[#failures within " << opt.horizon << "] = " << cell(failures, 6)
          << "\n";
    }
    return kExitOk;
  } catch (const ResourceLimitError& e) {
    if (opt.no_fallback) throw;
    out << "exact analysis hit a resource limit (" << e.what()
        << ");\nfalling back to Monte-Carlo estimation:\n\n";
    return cmd_analyze(opt, model, out, telemetry);
  }
}

int cmd_sweep(const Options& opt, const fmt::FaultMaintenanceTree& model,
              std::ostream& out, obs::Telemetry telemetry) {
  const bool wants_inspections = [&] {
    for (double f : opt.frequencies)
      if (f > 0) return true;
    return false;
  }();
  if (wants_inspections && model.inspections().empty())
    throw DomainError("model has no inspection modules to sweep");

  batch::SweepPlan plan;
  plan.threads = opt.threads;
  plan.max_retries = opt.max_retries;
  plan.stall_timeout_s = opt.stall_timeout;
  smc::RunControl& control = interrupt_control();
  control.reset();
  if (opt.timeout > 0) control.set_timeout(opt.timeout);
  plan.control = &control;
  plan.jobs.reserve(opt.frequencies.size());
  for (double f : opt.frequencies) {
    batch::SweepJob job;
    job.model = model;
    if (f == 0) {
      job.model.clear_inspections();
      job.label = "no-inspection";
    } else {
      for (std::size_t i = 0; i < job.model.inspections().size(); ++i)
        job.model.set_inspection_schedule(i, 1.0 / f);
      std::ostringstream name;
      name << f << "x-per-year";
      job.label = name.str();
    }
    job.settings.horizon = opt.horizon;
    job.settings.trajectories = opt.runs;
    job.settings.seed = opt.seed;
    job.settings.engine = opt.engine;
    job.settings.confidence = opt.confidence;
    plan.jobs.push_back(std::move(job));
  }

  std::unique_ptr<batch::ResultCache> cache;
  if (!opt.cache_dir.empty())
    cache = std::make_unique<batch::ResultCache>(opt.cache_dir);

  // --resume: consult the checkpoint manifest before running. The cache is
  // what actually replays completed jobs bit-identically; the manifest adds
  // plan validation and a progress preamble.
  if (opt.resume && cache != nullptr) {
    const std::string path = batch::checkpoint_path(opt.cache_dir);
    try {
      if (const auto cp = batch::read_checkpoint(path)) {
        if (cp->plan_id == batch::checkpoint_plan_id(plan)) {
          out << "resuming: " << cp->jobs_done() << " of " << cp->jobs.size()
              << " jobs already completed in a previous run\n";
        } else {
          Diagnostic d;
          d.severity = Severity::Warning;
          d.code = "C103";
          d.message = "checkpoint in '" + opt.cache_dir +
                      "' was written by a different sweep plan; starting fresh";
          out << "fmtree: " << format_diagnostic(d) << "\n";
        }
      } else {
        out << "resuming: no checkpoint found in '" << opt.cache_dir
            << "'; starting fresh\n";
      }
    } catch (const IoError& e) {
      Diagnostic d;
      d.severity = Severity::Warning;
      d.code = "C103";
      d.message = std::string("unreadable sweep checkpoint (") + e.what() +
                  "); starting fresh";
      out << "fmtree: " << format_diagnostic(d) << "\n";
    }
  }

  const batch::SweepOutcome o = batch::run_sweep(plan, cache.get(), telemetry);

  // Publish the manifest for the *next* --resume whenever a cache exists —
  // also after a truncated run, which is exactly when resume matters.
  if (cache != nullptr)
    batch::write_checkpoint(batch::checkpoint_path(opt.cache_dir), plan, o);

  out << "inspection-frequency cost curve over " << opt.horizon << " time units ("
      << opt.runs << " runs each, " << opt.confidence * 100 << "% CIs):\n";
  TextTable t({"policy", "cost / time unit", "failures / time unit", "source"});
  std::size_t best = opt.frequencies.size();
  for (std::size_t i = 0; i < o.results.size(); ++i) {
    const batch::JobResult& r = o.results[i];
    if (r.failed) {
      t.add_row({r.label, "(failed: " + r.failure.kind + ")", "", ""});
      continue;
    }
    if (!r.completed) {
      t.add_row({r.label, "(interrupted)", "", ""});
      continue;
    }
    t.add_row({r.label, ci(r.report.cost_per_year, 2), ci(r.report.failures_per_year, 5),
               r.cache_hit ? "cache" : "simulated"});
    if (best == opt.frequencies.size() ||
        r.report.cost_per_year.point < o.results[best].report.cost_per_year.point)
      best = i;
  }
  t.print(out);
  if (best < o.results.size()) {
    out << "\ncost-optimal policy: " << o.results[best].label << " at "
        << cell(o.results[best].report.cost_per_year.point, 2) << " / time unit\n";
  }
  if (cache) {
    out << "cache: " << o.cache_hits << " hits, " << o.cache_misses << " misses ("
        << opt.cache_dir << ")\n";
  }
  if (o.retries > 0)
    out << "self-healing: " << o.retries << " retr"
        << (o.retries == 1 ? "y" : "ies") << " recovered transient failures\n";
  for (const Diagnostic& d : o.warnings)
    out << "fmtree: " << format_diagnostic(d) << "\n";
  if (o.jobs_failed > 0) {
    out << "\nNOTE: " << o.jobs_failed << " job(s) failed permanently:\n";
    for (const batch::JobResult& r : o.results)
      if (r.failed)
        out << "  " << r.label << " [" << r.failure.kind << ", "
            << r.failure.attempts << " attempt(s)]: " << r.failure.message
            << "\n";
  }
  if (o.truncated) {
    out << "\nNOTE: sweep truncated (" << smc::stop_reason_name(o.stop_reason)
        << "); interrupted policies carry no results.\n";
    return kExitTruncated;
  }
  return o.jobs_failed > 0 ? kExitTruncated : kExitOk;
}

int cmd_dot(const fmt::FaultMaintenanceTree& model, std::ostream& out) {
  out << ft::to_dot(model.structure(), model.name(model.top()));
  return 0;
}

int cmd_cutsets(const Options& opt, const fmt::FaultMaintenanceTree& model,
                std::ostream& out) {
  const ft::FaultTree& tree = model.structure();
  const auto cuts = ft::minimal_cut_sets(tree);
  out << cuts.size() << " minimal cut sets:\n";
  for (const auto& cut : cuts) {
    out << "  {";
    for (std::size_t i = 0; i < cut.size(); ++i)
      out << (i ? ", " : " ") << tree.basic(tree.basic_events()[cut[i]]).name;
    out << " }\n";
  }
  out << "\nstatic top-event probability at t=" << opt.horizon << ": "
      << cell(ft::top_event_probability(tree, opt.horizon), 8)
      << "  (maintenance ignored)\n\nimportance measures:\n";
  TextTable t({"leaf", "P(fail)", "Birnbaum", "Fussell-Vesely", "criticality"});
  for (const ft::Importance& imp : ft::importance_measures(tree, opt.horizon))
    t.add_row({imp.name, cell(imp.probability, 4), cell(imp.birnbaum, 4),
               cell(imp.fussell_vesely, 4), cell(imp.criticality, 4)});
  t.print(out);
  return 0;
}

}  // namespace

int run_on_text(const Options& options, const std::string& model_text,
                std::ostream& out) {
  // --inject-fault armings live exactly as long as the command; sites armed
  // via FMTREE_FAULTS (registry construction) are left untouched.
  const fault::Scope fault_scope(options.inject_faults);
  const TelemetrySession session(options);
  auto parse_span = obs::maybe_span(session.tracer(), "parse");
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(model_text);
  parse_span.close();
  const auto dispatch = [&] {
    switch (options.command) {
      case Command::Check: return cmd_check(model, out);
      case Command::Analyze:
        return cmd_analyze(options, model, out, session.handles());
      case Command::Exact: return cmd_exact(options, model, out, session.handles());
      case Command::Dot: return cmd_dot(model, out);
      case Command::CutSets: return cmd_cutsets(options, model, out);
      case Command::Sweep: return cmd_sweep(options, model, out, session.handles());
      case Command::Compare:
        throw DomainError("compare needs two models; use run_compare");
    }
    throw DomainError("unhandled command");
  };
  const int code = dispatch();
  session.write_files();
  return code;
}

int run_compare(const Options& options, const std::string& model_a_text,
                const std::string& model_b_text, std::ostream& out) {
  const TelemetrySession session(options);
  auto parse_span = obs::maybe_span(session.tracer(), "parse");
  const fmt::FaultMaintenanceTree a = fmt::parse_fmt(model_a_text);
  const fmt::FaultMaintenanceTree b = fmt::parse_fmt(model_b_text);
  parse_span.close();
  smc::AnalysisSettings s;
  s.horizon = options.horizon;
  s.trajectories = options.runs;
  s.seed = options.seed;
  s.threads = options.threads;
  s.engine = options.engine;
  s.confidence = options.confidence;
  s.telemetry = session.handles();
  const smc::PairedComparison cmp = smc::compare_models(a, b, s);
  out << "paired comparison (common random numbers, " << cmp.trajectories
      << " runs; positive = first model higher):\n";
  TextTable t({"difference (A - B)", "estimate", "CI", "significant"});
  const auto row = [&](const char* label, const ConfidenceInterval& c) {
    t.add_row({label, cell(c.point, 4),
               "[" + cell(c.lo, 4) + ", " + cell(c.hi, 4) + "]",
               c.contains(0.0) ? "no" : "YES"});
  };
  row("failures", cmp.failures_diff);
  row("total cost", cmp.cost_diff);
  row("downtime", cmp.downtime_diff);
  t.print(out);
  session.write_files();
  return 0;
}

namespace {

/// Renders a failure on `err` — one line per diagnostic, or a JSON array
/// with --json-errors — and returns the exit code. Exceptions that carry no
/// diagnostic list are wrapped in a single synthetic diagnostic so the JSON
/// channel always has the same shape.
int report_failure(const Options& opt, std::ostream& err,
                   std::vector<Diagnostic> diags, int code) {
  if (opt.json_errors) {
    Diagnostics sink;
    for (Diagnostic& d : diags) sink.add(std::move(d));
    err << sink.to_json() << "\n";
  } else {
    for (const Diagnostic& d : diags)
      err << "fmtree: " << format_diagnostic(d) << "\n";
  }
  return code;
}

}  // namespace

int main_impl(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  Options options;
  try {
    options = parse_args(args);
  } catch (const Error& e) {
    // Usage errors precede flag parsing, so they are always plain text.
    err << "fmtree: " << e.what() << "\n";
    return kExitUsage;
  }
  try {
    const auto read_file = [](const std::string& path) {
      std::ifstream file(path);
      if (!file) throw IoError("cannot open '" + path + "'");
      std::ostringstream text;
      text << file.rdbuf();
      return text.str();
    };
    if (options.command == Command::Compare) {
      return run_compare(options, read_file(options.model_path),
                         read_file(options.model_path_b), out);
    }
    return run_on_text(options, read_file(options.model_path), out);
  } catch (const ParseErrors& e) {
    return report_failure(options, err, e.diagnostics(), kExitDiagnostics);
  } catch (const ModelErrors& e) {
    return report_failure(options, err, e.diagnostics(), kExitDiagnostics);
  } catch (const ParseError& e) {
    return report_failure(options, err, {diagnostic_from(e)}, kExitDiagnostics);
  } catch (const ModelError& e) {
    return report_failure(options, err, {diagnostic_from(e, "M104")}, kExitDiagnostics);
  } catch (const ResourceLimitError& e) {
    return report_failure(options, err, {diagnostic_from(e, "R101")},
                          kExitResourceLimit);
  } catch (const Error& e) {
    // IoError, DomainError, UnsupportedModelError: bad input to a valid
    // command — same exit code as a usage error.
    return report_failure(options, err, {diagnostic_from(e, "U101")}, kExitUsage);
  } catch (const std::exception& e) {
    Diagnostic d;
    d.code = "X101";
    d.message = std::string("internal error: ") + e.what();
    return report_failure(options, err, {d}, kExitInternal);
  }
}

std::string usage() {
  return
      "usage: fmtree <command> <model.fmt> [options]\n"
      "commands:\n"
      "  check     parse and validate, print a model summary\n"
      "  analyze   Monte-Carlo KPI report (reliability, failures, cost, ...)\n"
      "  exact     exact CTMC results (Markovian models only)\n"
      "  dot       Graphviz of the tree structure\n"
      "  cutsets   minimal cut sets and importance measures\n"
      "  compare   paired A/B comparison of two models (common random numbers)\n"
      "  sweep     evaluate the model across inspection frequencies (cost curve)\n"
      "options:\n"
      "  --horizon <t>      analysis horizon (default 10)\n"
      "  --runs <n>         Monte-Carlo trajectories (default 10000)\n"
      "  --seed <n>         RNG seed (default 1)\n"
      "  --threads <n>      worker threads (default: all cores)\n"
      "  --engine <name>    trajectory kernel: scalar | batch (default:\n"
      "                     FMTREE_ENGINE env var, else scalar)\n"
      "  --confidence <p>   CI level (default 0.95)\n"
      "  --quantiles <l>    comma-separated TTF quantiles, e.g. 0.1,0.5,0.9\n"
      "  --timeout <s>      wall-clock budget in seconds; on expiry analyze\n"
      "                     reports the completed prefix (exit code 1)\n"
      "  --state-cap <n>    CTMC state-space cap for exact (default 2^20)\n"
      "  --no-fallback      fail exact on a resource limit instead of\n"
      "                     falling back to Monte-Carlo\n"
      "  --json-errors      report failures as a JSON diagnostic array\n"
      "  --metrics <file>   write engine metrics as JSON (fmtree.metrics/v1)\n"
      "  --trace <file>     write phase spans as JSON (fmtree.trace/v1);\n"
      "                     chrome:<file> writes Chrome trace_event format\n"
      "  --progress         print throttled progress lines while running\n"
      "  --frequencies <l>  sweep: comma-separated inspections per time unit,\n"
      "                     0 = none (default 0,0.5,1,2,3,4,6,8,12,24)\n"
      "  --cache-dir <dir>  sweep: content-addressed result cache directory;\n"
      "                     repeated runs reuse bit-identical results\n"
      "  --resume           sweep: resume from the checkpoint in --cache-dir;\n"
      "                     completed jobs replay bit-identically from cache\n"
      "  --max-retries <n>  sweep: retry budget per job for transient\n"
      "                     failures (default 2)\n"
      "  --stall-timeout <s> sweep: stop with a diagnostic if no progress\n"
      "                     for <s> seconds (default: off)\n"
      "  --inject-fault <f> arm a fault site for this run (testing), e.g.\n"
      "                     cache.write:error,p=0.05,seed=7; repeatable\n"
      "exit codes: 0 ok, 1 truncated run, 2 usage/input error,\n"
      "            3 parse/validation diagnostics, 4 resource limit,\n"
      "            5 internal error\n";
}

}  // namespace fmtree::cli
