#include <csignal>
#include <iostream>
#include <vector>

#include "cli/cli.hpp"

namespace {

// Async-signal-safe: request_stop() is a relaxed atomic store. Restoring the
// default disposition afterwards lets a second Ctrl-C kill a run that is
// stuck somewhere that never polls the control.
extern "C" void handle_interrupt(int) {
  fmtree::cli::interrupt_control().request_stop();
  std::signal(SIGINT, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, handle_interrupt);
  std::vector<std::string> args(argv + 1, argv + argc);
  return fmtree::cli::main_impl(args, std::cout, std::cerr);
}
