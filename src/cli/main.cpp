#include <csignal>
#include <iostream>
#include <vector>

#include "cli/cli.hpp"

namespace {

// Async-signal-safe: request_stop() is a relaxed atomic store. Restoring the
// default disposition afterwards lets a second signal kill a run that is
// stuck somewhere that never polls the control. SIGTERM (an orchestrator's
// polite kill) gets the same treatment as SIGINT: the run stops at the next
// trajectory boundary and reports exact statistics over the completed prefix.
extern "C" void handle_interrupt(int sig) {
  fmtree::cli::interrupt_control().request_stop();
  std::signal(sig, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
  std::vector<std::string> args(argv + 1, argv + argc);
  return fmtree::cli::main_impl(args, std::cout, std::cerr);
}
