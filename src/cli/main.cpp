#include <iostream>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return fmtree::cli::main_impl(args, std::cout, std::cerr);
}
