// Structure-of-arrays lane-batch execution of the FMT semantics — the raw
// throughput engine behind fmtree::Engine::Batch.
//
// Where FmtSimulator advances one trajectory through a binary-heap event
// queue, BatchExecutor advances a *lane batch* of W independent trajectories
// whose mutable state lives in structure-of-arrays form: one flat array per
// field (phase, acceleration, next-event clock, ...), each holding W
// contiguous per-lane rows. The per-event hot path is restructured around
// that layout:
//
//  * event selection is a branch-free min-scan over the lane's candidate
//    clocks (per-leaf next transition/repair, per-module next inspection/
//    replacement, pending corrective renewal) — cancellation is a plain
//    store, where the heap needed handle bookkeeping and lazy deletion;
//  * sojourn sampling runs over flat per-(leaf, phase) sampler tables
//    (kind tag + parameters) instead of std::visit on Distribution — and
//    the initial firing times of all leaves x lanes are sampled in one
//    pass when a batch starts;
//  * gate re-evaluation reuses the incremental GateEvaluator tables
//    (shared, immutable) with one GateEvaluator::State per lane, so a leaf
//    flip costs O(changed region) exactly as in the scalar engine.
//
// Randomness is counter-based (CounterStream, Philox-4x32-10): draw i of
// trajectory t under seed s is the pure function philox(s, (t, i)), so a
// trajectory's stream depends only on its own event sequence — never on
// which lane, chunk, or thread ran it, nor on how many trajectories shared
// the batch. Reports are therefore bit-identical at any lane width, chunk
// size, and thread count by construction.
//
// The two engines implement the same semantics over the same distributions
// but different RNG families, so their outputs agree statistically, not
// bit-wise; FmtSimulator remains the reference oracle (equivalence is
// enforced by tests/smc/engine_equivalence_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fmt/fmtree.hpp"
#include "sim/fmt_executor.hpp"
#include "sim/gate_eval.hpp"
#include "util/rng.hpp"

namespace fmtree::sim {

/// All mutable state of one BatchExecutor::run call, reusable across batches
/// (one per worker thread): SoA field arrays sized lanes x leaves, per-lane
/// gate states and counter streams, and the per-lane results. Like
/// SimWorkspace, a workspace carries nothing between runs and may be handed
/// to executors of different models — run() resizes everything to fit.
struct BatchWorkspace {
  // Lane-major SoA rows: field[lane * num_leaves + leaf].
  std::vector<std::int32_t> phase;
  std::vector<double> accel;
  std::vector<double> frozen_remaining;  // natural-rate time left while accel == 0
  std::vector<std::uint8_t> leaf_failed;
  std::vector<std::uint8_t> under_repair;
  /// Lane-major candidate-clock rows of length L + Mi + Mr + 1: next event
  /// time per leaf ([0, L): phase transition, or repair completion while
  /// under_repair; +infinity when failed or frozen), per inspection module
  /// ([L, L+Mi)), per replacement module ([L+Mi, L+Mi+Mr)), and the pending
  /// corrective renewal (last slot; +infinity = none). One contiguous row
  /// means event selection is a single min-scan.
  std::vector<double> clock;
  // Per-lane scalars.
  std::vector<std::uint8_t> system_down;
  std::vector<double> down_since;
  std::vector<GateEvaluator::State> gates;
  std::vector<CounterStream> rng;
  /// Per-lane scripted-policy VM states (sized only when a policy runs).
  std::vector<lang::PolicyState> policy;
  /// Per-lane trajectory results, valid for lanes [0, n) after run().
  std::vector<TrajectoryResult> results;
};

/// Executes lane batches of trajectories of one FMT. Immutable after
/// construction; run() is const and re-entrant, so one instance is shared
/// across threads (each thread owning its BatchWorkspace).
class BatchExecutor {
public:
  /// Lanes per batch when RunSettings::lane_width is 0. Wide enough to
  /// amortize batch setup and keep the initial sampling pass long, small
  /// enough that a batch's SoA state stays cache-resident.
  static constexpr unsigned kDefaultLaneWidth = 16;

  /// Validates the model and compiles it into flat tables. The model must
  /// outlive the executor.
  explicit BatchExecutor(const fmt::FaultMaintenanceTree& model);

  /// Simulates trajectories [first, first + n) — lane L running stream
  /// CounterStream(seed, first + L) — and leaves per-trajectory results in
  /// ws.results[0..n). Honors horizon / discount_rate / record_failure_log
  /// from `opts`; reference_engine is meaningless here and ignored; traces
  /// are unsupported (throws DomainError when opts.trace is set).
  void run(std::uint64_t seed, std::uint64_t first, std::uint32_t n,
           const SimOptions& opts, BatchWorkspace& ws) const;

  const fmt::FaultMaintenanceTree& model() const noexcept { return model_; }

private:
  /// One (leaf, phase) sojourn sampler: Distribution flattened to a kind tag
  /// plus two parameters, so the hot loop switches instead of std::visit-ing.
  struct Sampler {
    enum class Kind : std::uint8_t {
      Exponential,    ///< a = rate
      Erlang,         ///< a = rate, b = shape
      Weibull,        ///< a = shape, b = scale
      Lognormal,      ///< a = mu, b = sigma
      Uniform,        ///< a = lo, b = hi
      Deterministic,  ///< a = value (+infinity = never)
    };
    Kind kind = Kind::Deterministic;
    double a = 0.0;
    double b = 0.0;
  };

  /// Hot-loop form of one rate dependency (mirrors FmtSimulator::RdepInfo).
  struct RdepInfo {
    std::uint32_t trigger_node = 0;
    std::uint32_t trigger_leaf = 0;  ///< valid iff trigger_phase >= 1
    std::int32_t trigger_phase = 0;
    double factor = 1.0;
  };

  struct InspectionInfo {
    double period = 1.0;
    double first_at = 1.0;
    double cost = 0.0;
    double detection_probability = 1.0;
    std::uint32_t targets_begin = 0, targets_end = 0;  ///< into insp_targets_
  };

  struct ReplacementInfo {
    double period = 1.0;
    double first_at = 1.0;
    double cost = 0.0;
    std::uint32_t targets_begin = 0, targets_end = 0;  ///< into repl_targets_
  };

  /// Ziggurat sampler for Exp(1) (Marsaglia & Tsang 2000, 256 layers): one
  /// 32-bit draw, a table compare and a multiply produce ~98% of samples
  /// without ever calling log() — the scalar engine's inversion method
  /// (-log(u)/rate) spends most of its sampling time in exactly that log.
  /// An exact method, not an approximation: the accepted values follow
  /// Exp(1) precisely, rejections fall through to the wedge/tail tests.
  class ExpZiggurat {
  public:
    ExpZiggurat() noexcept;
    double sample(CounterStream& rng) const noexcept;

  private:
    std::array<std::uint32_t, 256> ke_;  ///< acceptance thresholds
    std::array<double, 256> we_;         ///< layer widths (x scale / 2^32)
    std::array<double, 256> fe_;         ///< f(x_i) = exp(-x_i)
  };

  struct LaneContext;  // per-lane view over the workspace rows (in .cpp)

  double sample_sojourn(std::uint32_t leaf, std::int32_t phase,
                        CounterStream& rng) const;
  void simulate_lane(LaneContext& lane, const SimOptions& opts) const;

  const fmt::FaultMaintenanceTree& model_;
  GateEvaluator eval_;
  ExpZiggurat zig_;
  std::uint32_t top_node_ = 0;
  std::uint32_t num_leaves_ = 0;

  // Per (leaf, phase) samplers: phase p of leaf l at
  // samplers_[sampler_begin_[l] + p - 1].
  std::vector<Sampler> samplers_;
  std::vector<std::uint32_t> sampler_begin_;
  std::vector<std::int32_t> num_phases_;  // per leaf
  std::vector<std::int32_t> threshold_;   // per leaf: inspection threshold phase
  std::vector<double> repair_cost_;       // per leaf
  std::vector<double> repair_duration_;   // per leaf

  std::vector<InspectionInfo> inspections_;
  std::vector<std::uint32_t> insp_targets_;
  std::vector<ReplacementInfo> replacements_;
  std::vector<std::uint32_t> repl_targets_;

  // CSR: rdep indices watching each leaf.
  std::vector<std::uint32_t> rdep_begin_;
  std::vector<std::uint32_t> rdep_edges_;
  std::vector<RdepInfo> rdep_info_;

  std::vector<std::int32_t> spare_of_leaf_;  // spare-spec index, -1 = none
  std::vector<std::uint32_t> spare_begin_;   // CSR over spare_children_
  std::vector<std::uint32_t> spare_children_;
  std::vector<double> spare_dormancy_;

  /// Leaves whose acceleration factor can ever differ from 1 — the only
  /// ones update_rates visits (RDEP targets and spare-pool members).
  std::vector<std::uint32_t> rate_leaves_;

  std::vector<std::uint32_t> fdep_trigger_node_;
  std::vector<std::uint32_t> fdep_begin_;  // CSR over fdep_dependents_
  std::vector<std::uint32_t> fdep_dependents_;

  // Corrective policy, denormalized.
  bool corrective_enabled_ = false;
  double corrective_delay_ = 0.0;
  double corrective_cost_ = 0.0;
  double downtime_cost_rate_ = 0.0;
};

}  // namespace fmtree::sim
