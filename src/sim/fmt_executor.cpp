#include "sim/fmt_executor.hpp"

#include <cmath>
#include <optional>

#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace fmtree::sim {

namespace {

struct Ev {
  enum class Kind : std::uint8_t { Phase, Inspect, Replace, CorrectiveDone, RepairDone };
  Kind kind = Kind::Phase;
  std::uint32_t index = 0;  // leaf index or module index
};

}  // namespace

FmtSimulator::FmtSimulator(const fmt::FaultMaintenanceTree& model) : model_(model) {
  model.validate();
  rdeps_by_leaf_.resize(model.num_ebes());
  for (std::size_t r = 0; r < model.rdeps().size(); ++r) {
    for (fmt::NodeId dep : model.rdeps()[r].dependents)
      rdeps_by_leaf_[model.ebe_index(dep)].push_back(static_cast<std::uint32_t>(r));
  }
  spare_of_leaf_.assign(model.num_ebes(), -1);
  for (std::size_t sp = 0; sp < model.spares().size(); ++sp) {
    for (fmt::NodeId child : model.spares()[sp].children)
      spare_of_leaf_[model.ebe_index(child)] = static_cast<std::int32_t>(sp);
  }
}

TrajectoryResult FmtSimulator::run(RandomStream rng, const SimOptions& opts) const {
  if (!(opts.horizon > 0)) throw DomainError("simulation horizon must be positive");
  const ft::FaultTree& structure = model_.structure();
  const std::size_t num_leaves = model_.num_ebes();
  const std::size_t num_nodes = structure.node_count();
  const fmt::CorrectivePolicy& corrective = model_.corrective();
  Trace* trace = opts.trace;

  TrajectoryResult result;
  result.horizon = opts.horizon;
  result.repairs_per_leaf.assign(num_leaves, 0);
  result.failures_per_leaf.assign(num_leaves, 0);

  // ---- Mutable trajectory state -------------------------------------------
  std::vector<int> phase(num_leaves, 1);
  std::vector<double> accel(num_leaves, 1.0);
  std::vector<double> frozen_remaining(num_leaves, 0.0);  // natural-rate time left while accel == 0
  std::vector<double> next_time(num_leaves, 0.0);
  std::vector<EventHandle> next_handle(num_leaves);
  std::vector<bool> leaf_failed(num_leaves, false);
  std::vector<bool> under_repair(num_leaves, false);
  std::vector<EventHandle> repair_handle(num_leaves);
  std::vector<char> node_true(num_nodes, 0);
  EventQueue<Ev> queue;
  bool system_down = false;
  double down_since = 0.0;
  std::optional<EventHandle> corrective_pending;

  const auto leaf_name = [&](std::uint32_t leaf) -> const std::string& {
    return model_.ebes()[leaf].name;
  };

  // Net-present-value weight of a cost accrued at `now`.
  const double discount_rate = opts.discount_rate;
  if (discount_rate < 0) throw DomainError("discount rate must be >= 0");
  const auto discount = [&](double now) {
    return discount_rate > 0 ? std::exp(-discount_rate * now) : 1.0;
  };
  // Discounted value of downtime cost accrued at `rate` over [a, b].
  const auto discounted_downtime = [&](double a, double b) {
    if (discount_rate <= 0) return corrective.downtime_cost_rate * (b - a);
    return corrective.downtime_cost_rate *
           (std::exp(-discount_rate * a) - std::exp(-discount_rate * b)) /
           discount_rate;
  };

  const auto schedule_phase = [&](std::uint32_t leaf, double now) {
    const fmt::DegradationModel& deg = model_.ebes()[leaf].degradation;
    const double raw = deg.sojourn(phase[leaf]).sample(rng);
    if (accel[leaf] > 0) {
      next_time[leaf] = now + raw / accel[leaf];
      next_handle[leaf] = queue.schedule(next_time[leaf], Ev{Ev::Kind::Phase, leaf});
    } else {
      // Frozen (cold spare): hold the sampled sojourn until reactivated.
      frozen_remaining[leaf] = raw;
      next_time[leaf] = std::numeric_limits<double>::infinity();
    }
  };

  const auto evaluate_nodes = [&] {
    // Children are created before parents, so ascending id order is a valid
    // bottom-up evaluation schedule.
    for (std::uint32_t id = 0; id < num_nodes; ++id) {
      const ft::NodeId node{id};
      if (structure.is_basic(node)) {
        node_true[id] = leaf_failed[structure.basic_index(node)] ? 1 : 0;
        continue;
      }
      const ft::Gate& g = structure.gate(node);
      int count = 0;
      for (ft::NodeId c : g.children) count += node_true[c.value];
      switch (g.type) {
        case ft::GateType::And:
          node_true[id] = count == static_cast<int>(g.children.size()) ? 1 : 0;
          break;
        case ft::GateType::Or:
          node_true[id] = count > 0 ? 1 : 0;
          break;
        case ft::GateType::Voting:
          node_true[id] = count >= g.k ? 1 : 0;
          break;
      }
    }
  };

  // The leaf currently active in a spare pool: its lowest-index non-failed
  // child (all-failed pools have no active member; the value is unused then).
  const auto spare_factor = [&](std::uint32_t leaf) {
    const std::int32_t sp = spare_of_leaf_[leaf];
    if (sp < 0) return 1.0;
    const fmt::SpareSpec& spec = model_.spares()[static_cast<std::size_t>(sp)];
    for (fmt::NodeId child : spec.children) {
      const auto c = static_cast<std::uint32_t>(model_.ebe_index(child));
      if (!leaf_failed[c]) return c == leaf ? 1.0 : spec.dormancy;
    }
    return 1.0;
  };

  const auto update_rates = [&](double now) {
    if (model_.rdeps().empty() && model_.spares().empty()) return;
    for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf) {
      if (rdeps_by_leaf_[leaf].empty() && spare_of_leaf_[leaf] < 0) continue;
      double desired = spare_factor(leaf);
      for (std::uint32_t r : rdeps_by_leaf_[leaf]) {
        const fmt::RateDependency& dep = model_.rdeps()[r];
        bool active = false;
        if (dep.trigger_phase == 0) {
          active = node_true[dep.trigger.value] != 0;
        } else {
          const auto trig = static_cast<std::uint32_t>(model_.ebe_index(dep.trigger));
          active = phase[trig] >= dep.trigger_phase;
        }
        if (active) desired *= dep.factor;
      }
      if (desired == accel[leaf]) continue;
      if (!leaf_failed[leaf] && !under_repair[leaf]) {
        // Rescale the remaining sojourn: faster degradation shrinks it. A
        // factor of zero freezes it; the natural-rate remainder is kept so
        // reactivation resumes exactly where the clock stopped.
        const double natural = accel[leaf] > 0
                                   ? (next_time[leaf] - now) * accel[leaf]
                                   : frozen_remaining[leaf];
        if (accel[leaf] > 0) queue.cancel(next_handle[leaf]);
        if (desired > 0) {
          next_time[leaf] = now + natural / desired;
          next_handle[leaf] = queue.schedule(next_time[leaf], Ev{Ev::Kind::Phase, leaf});
        } else {
          frozen_remaining[leaf] = natural;
          next_time[leaf] = std::numeric_limits<double>::infinity();
        }
      }
      accel[leaf] = desired;
      if (trace)
        trace->record(now, TraceKind::AccelerationChanged, leaf_name(leaf),
                      static_cast<std::int64_t>(std::llround(desired * 1000)));
    }
  };

  const auto renew_leaf = [&](std::uint32_t leaf, double now) {
    if (under_repair[leaf]) {
      // Renewal preempts the ongoing repair (the whole component is new).
      queue.cancel(repair_handle[leaf]);
      under_repair[leaf] = false;
    } else if (!leaf_failed[leaf] && accel[leaf] > 0) {
      queue.cancel(next_handle[leaf]);
    }
    phase[leaf] = 1;
    leaf_failed[leaf] = false;
    schedule_phase(leaf, now);
  };

  const auto end_downtime = [&](double now) {
    result.downtime += now - down_since;
    result.cost.downtime += corrective.downtime_cost_rate * (now - down_since);
    result.discounted_cost.downtime += discounted_downtime(down_since, now);
    system_down = false;
    if (corrective_pending) {
      queue.cancel(*corrective_pending);
      corrective_pending.reset();
    }
  };

  // FDEP cascade: failed triggers force their dependents to fail, possibly
  // enabling further triggers — iterate node evaluation to the (monotone)
  // fixpoint.
  const auto apply_fdeps = [&](double now) {
    if (model_.fdeps().empty()) return;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const fmt::FunctionalDependency& dep : model_.fdeps()) {
        if (!node_true[dep.trigger.value]) continue;
        for (fmt::NodeId d : dep.dependents) {
          const auto leaf = static_cast<std::uint32_t>(model_.ebe_index(d));
          if (leaf_failed[leaf]) continue;
          if (under_repair[leaf]) {
            queue.cancel(repair_handle[leaf]);
            under_repair[leaf] = false;
          } else if (accel[leaf] > 0) {
            queue.cancel(next_handle[leaf]);
          }
          phase[leaf] = model_.ebes()[leaf].degradation.phases() + 1;
          leaf_failed[leaf] = true;
          changed = true;
          if (trace) trace->record(now, TraceKind::LeafFailed, leaf_name(leaf));
        }
      }
      if (changed) evaluate_nodes();
    }
  };

  // Re-evaluates the tree and processes a potential top-event edge.
  // `cause` identifies the leaf responsible for a rising edge.
  const auto settle = [&](double now, std::optional<std::uint32_t> cause) {
    evaluate_nodes();
    apply_fdeps(now);
    update_rates(now);
    const bool top_now = node_true[model_.top().value] != 0;
    if (top_now && !system_down) {
      ++result.failures;
      result.first_failure_time = std::min(result.first_failure_time, now);
      const std::uint32_t cause_leaf = cause.value_or(0);
      FMTREE_ASSERT(cause.has_value(), "top event rose without a causing leaf");
      ++result.failures_per_leaf[cause_leaf];
      if (opts.record_failure_log)
        result.failure_log.push_back(FailureRecord{now, cause_leaf});
      result.cost.corrective += corrective.enabled ? corrective.cost : 0.0;
      result.discounted_cost.corrective +=
          corrective.enabled ? corrective.cost * discount(now) : 0.0;
      system_down = true;
      down_since = now;
      if (trace)
        trace->record(now, TraceKind::TopFailed, structure.name(model_.top()));
      if (corrective.enabled) {
        corrective_pending = queue.schedule(now + corrective.delay,
                                            Ev{Ev::Kind::CorrectiveDone, 0});
      }
    } else if (!top_now && system_down) {
      end_downtime(now);
      if (trace)
        trace->record(now, TraceKind::TopRestored, structure.name(model_.top()));
    }
  };

  // ---- Initial schedule -----------------------------------------------------
  for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf) schedule_phase(leaf, 0.0);
  for (std::size_t m = 0; m < model_.inspections().size(); ++m)
    queue.schedule(model_.inspections()[m].first_at,
                   Ev{Ev::Kind::Inspect, static_cast<std::uint32_t>(m)});
  for (std::size_t m = 0; m < model_.replacements().size(); ++m)
    queue.schedule(model_.replacements()[m].first_at,
                   Ev{Ev::Kind::Replace, static_cast<std::uint32_t>(m)});
  evaluate_nodes();
  update_rates(0.0);  // apply initial spare dormancy

  // ---- Main loop ------------------------------------------------------------
  while (!queue.empty() && queue.peek_time() <= opts.horizon) {
    const auto event = queue.pop();
    const double now = event.time;
    switch (event.payload.kind) {
      case Ev::Kind::Phase: {
        const std::uint32_t leaf = event.payload.index;
        ++phase[leaf];
        const fmt::DegradationModel& deg = model_.ebes()[leaf].degradation;
        if (trace)
          trace->record(now, TraceKind::PhaseTransition, leaf_name(leaf), phase[leaf]);
        if (phase[leaf] > deg.phases()) {
          leaf_failed[leaf] = true;
          if (trace) trace->record(now, TraceKind::LeafFailed, leaf_name(leaf));
          settle(now, leaf);
        } else {
          schedule_phase(leaf, now);
          // Phase progress cannot flip a gate, but it can activate a
          // phase-triggered rate dependency.
          settle(now, std::nullopt);
        }
        break;
      }
      case Ev::Kind::Inspect: {
        const fmt::InspectionModule& mod = model_.inspections()[event.payload.index];
        ++result.inspections;
        result.cost.inspection += mod.cost;
        result.discounted_cost.inspection += mod.cost * discount(now);
        if (trace) trace->record(now, TraceKind::InspectionPerformed, mod.name);
        for (fmt::NodeId target : mod.targets) {
          const auto leaf = static_cast<std::uint32_t>(model_.ebe_index(target));
          const fmt::ExtendedBasicEvent& e = model_.ebes()[leaf];
          if (leaf_failed[leaf]) continue;  // inspections cannot fix failures
          if (under_repair[leaf]) continue;  // a crew is already on it
          if (phase[leaf] < e.degradation.threshold_phase()) continue;
          // Imperfect inspections miss degradation with prob. 1 - p.
          if (mod.detection_probability < 1.0 &&
              !rng.bernoulli(mod.detection_probability)) {
            continue;
          }
          ++result.repairs;
          ++result.repairs_per_leaf[leaf];
          result.cost.repair += e.repair.cost;
          result.discounted_cost.repair += e.repair.cost * discount(now);
          if (trace) trace->record(now, TraceKind::RepairPerformed, e.name);
          if (e.repair.duration > 0) {
            // Timed repair: pause degradation until the crew finishes.
            queue.cancel(next_handle[leaf]);
            under_repair[leaf] = true;
            repair_handle[leaf] =
                queue.schedule(now + e.repair.duration, Ev{Ev::Kind::RepairDone, leaf});
          } else {
            renew_leaf(leaf, now);
          }
        }
        // Repairs reset phases, which can deactivate phase-triggered rate
        // dependencies (failure states are untouched).
        settle(now, std::nullopt);
        queue.schedule(now + mod.period, Ev{Ev::Kind::Inspect, event.payload.index});
        break;
      }
      case Ev::Kind::Replace: {
        const fmt::ReplacementModule& mod = model_.replacements()[event.payload.index];
        ++result.replacements;
        result.cost.replacement += mod.cost;
        result.discounted_cost.replacement += mod.cost * discount(now);
        if (trace) trace->record(now, TraceKind::ReplacementPerformed, mod.name);
        for (fmt::NodeId target : mod.targets)
          renew_leaf(static_cast<std::uint32_t>(model_.ebe_index(target)), now);
        settle(now, std::nullopt);  // may restore a failed system
        queue.schedule(now + mod.period, Ev{Ev::Kind::Replace, event.payload.index});
        break;
      }
      case Ev::Kind::RepairDone: {
        const std::uint32_t leaf = event.payload.index;
        under_repair[leaf] = false;
        phase[leaf] = 1;
        schedule_phase(leaf, now);
        if (trace) trace->record(now, TraceKind::RepairCompleted, leaf_name(leaf));
        settle(now, std::nullopt);  // phase reset may deactivate RDEPs
        break;
      }
      case Ev::Kind::CorrectiveDone: {
        corrective_pending.reset();
        for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf) renew_leaf(leaf, now);
        if (trace)
          trace->record(now, TraceKind::CorrectiveCompleted, structure.name(model_.top()));
        settle(now, std::nullopt);
        break;
      }
    }
  }

  if (system_down) {
    result.downtime += opts.horizon - down_since;
    result.cost.downtime += corrective.downtime_cost_rate * (opts.horizon - down_since);
    result.discounted_cost.downtime += discounted_downtime(down_since, opts.horizon);
  }
  return result;
}

}  // namespace fmtree::sim
