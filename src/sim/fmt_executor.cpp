#include "sim/fmt_executor.hpp"

#include <cmath>
#include <optional>

#include "util/error.hpp"

namespace fmtree::sim {

using detail::Ev;

FmtSimulator::FmtSimulator(const fmt::FaultMaintenanceTree& model)
    : model_(model), eval_(model.structure()) {
  model.validate();
  top_node_ = model.top().value;

  const auto leaf_of = [&](fmt::NodeId id) {
    return static_cast<std::uint32_t>(model.ebe_index(id));
  };

  rdeps_by_leaf_.resize(model.num_ebes());
  for (std::size_t r = 0; r < model.rdeps().size(); ++r) {
    const fmt::RateDependency& dep = model.rdeps()[r];
    for (fmt::NodeId d : dep.dependents)
      rdeps_by_leaf_[leaf_of(d)].push_back(static_cast<std::uint32_t>(r));
    RdepInfo info;
    info.trigger_node = dep.trigger.value;
    info.trigger_phase = dep.trigger_phase;
    info.factor = dep.factor;
    if (dep.trigger_phase >= 1) info.trigger_leaf = leaf_of(dep.trigger);
    rdep_info_.push_back(info);
  }

  spare_of_leaf_.assign(model.num_ebes(), -1);
  for (std::size_t sp = 0; sp < model.spares().size(); ++sp) {
    std::vector<std::uint32_t> pool;
    for (fmt::NodeId child : model.spares()[sp].children) {
      spare_of_leaf_[leaf_of(child)] = static_cast<std::int32_t>(sp);
      pool.push_back(leaf_of(child));
    }
    spare_children_.push_back(std::move(pool));
    spare_dormancy_.push_back(model.spares()[sp].dormancy);
  }

  for (std::uint32_t leaf = 0; leaf < model.num_ebes(); ++leaf) {
    if (!rdeps_by_leaf_[leaf].empty() || spare_of_leaf_[leaf] >= 0)
      rate_leaves_.push_back(leaf);
  }

  for (const fmt::InspectionModule& mod : model.inspections()) {
    std::vector<std::uint32_t> targets;
    for (fmt::NodeId t : mod.targets) targets.push_back(leaf_of(t));
    inspection_targets_.push_back(std::move(targets));
  }
  for (const fmt::ReplacementModule& mod : model.replacements()) {
    std::vector<std::uint32_t> targets;
    for (fmt::NodeId t : mod.targets) targets.push_back(leaf_of(t));
    replacement_targets_.push_back(std::move(targets));
  }
  for (const fmt::FunctionalDependency& dep : model.fdeps()) {
    fdep_trigger_node_.push_back(dep.trigger.value);
    std::vector<std::uint32_t> deps;
    for (fmt::NodeId d : dep.dependents) deps.push_back(leaf_of(d));
    fdep_dependents_.push_back(std::move(deps));
  }
}

TrajectoryResult FmtSimulator::run(RandomStream rng, const SimOptions& opts) const {
  SimWorkspace ws;
  return run(rng, opts, ws);
}

TrajectoryResult FmtSimulator::run(RandomStream rng, const SimOptions& opts,
                                   SimWorkspace& ws) const {
  if (!(opts.horizon > 0)) throw DomainError("simulation horizon must be positive");
  const ft::FaultTree& structure = model_.structure();
  const std::size_t num_leaves = model_.num_ebes();
  const fmt::CorrectivePolicy& corrective = model_.corrective();
  const bool reference = opts.reference_engine;
  Trace* trace = opts.trace;

  TrajectoryResult result;
  result.horizon = opts.horizon;
  result.repairs_per_leaf.assign(num_leaves, 0);
  result.failures_per_leaf.assign(num_leaves, 0);

  // ---- Reset the workspace (no reallocation when sizes are unchanged) ------
  ws.phase.assign(num_leaves, 1);
  ws.accel.assign(num_leaves, 1.0);
  ws.frozen_remaining.assign(num_leaves, 0.0);
  ws.next_time.assign(num_leaves, 0.0);
  ws.next_handle.assign(num_leaves, EventHandle{});
  ws.repair_handle.assign(num_leaves, EventHandle{});
  ws.leaf_failed.assign(num_leaves, 0);
  ws.under_repair.assign(num_leaves, 0);
  eval_.reset(ws.gates);
  ws.queue.reset();  // safe: every handle of the previous trajectory is gone
  const lang::BoundPolicy* policy = opts.bound_policy;
  if (policy) ws.policy.reset(*policy);

  auto& phase = ws.phase;
  auto& accel = ws.accel;
  auto& frozen_remaining = ws.frozen_remaining;
  auto& next_time = ws.next_time;
  auto& next_handle = ws.next_handle;
  auto& repair_handle = ws.repair_handle;
  auto& leaf_failed = ws.leaf_failed;
  auto& under_repair = ws.under_repair;
  auto& gates = ws.gates;
  auto& queue = ws.queue;
  bool system_down = false;
  double down_since = 0.0;
  std::optional<EventHandle> corrective_pending;

  const auto leaf_name = [&](std::uint32_t leaf) -> const std::string& {
    return model_.ebes()[leaf].name;
  };

  // The single mutation point for leaf failure states: keeps the incremental
  // gate evaluation in sync with leaf_failed.
  const auto set_leaf_failed = [&](std::uint32_t leaf, bool failed) {
    leaf_failed[leaf] = failed ? 1 : 0;
    if (reference) {
      eval_.set_leaf_raw(gates, leaf, failed);  // recomputed wholesale in settle
    } else {
      eval_.set_leaf(gates, leaf, failed);
    }
  };

  // Net-present-value weight of a cost accrued at `now`.
  const double discount_rate = opts.discount_rate;
  if (discount_rate < 0) throw DomainError("discount rate must be >= 0");
  const auto discount = [&](double now) {
    return discount_rate > 0 ? std::exp(-discount_rate * now) : 1.0;
  };
  // Discounted value of downtime cost accrued at `rate` over [a, b].
  const auto discounted_downtime = [&](double a, double b) {
    if (discount_rate <= 0) return corrective.downtime_cost_rate * (b - a);
    return corrective.downtime_cost_rate *
           (std::exp(-discount_rate * a) - std::exp(-discount_rate * b)) /
           discount_rate;
  };

  const auto schedule_phase = [&](std::uint32_t leaf, double now) {
    const fmt::DegradationModel& deg = model_.ebes()[leaf].degradation;
    const double raw = deg.sojourn(phase[leaf]).sample(rng);
    if (accel[leaf] > 0) {
      next_time[leaf] = now + raw / accel[leaf];
      next_handle[leaf] = queue.schedule(next_time[leaf], Ev{Ev::Kind::Phase, leaf});
    } else {
      // Frozen (cold spare): hold the sampled sojourn until reactivated.
      frozen_remaining[leaf] = raw;
      next_time[leaf] = std::numeric_limits<double>::infinity();
    }
  };

  // The leaf currently active in a spare pool: its lowest-index non-failed
  // child (all-failed pools have no active member; the value is unused then).
  const auto spare_factor = [&](std::uint32_t leaf) {
    const std::int32_t sp = spare_of_leaf_[leaf];
    if (sp < 0) return 1.0;
    for (std::uint32_t c : spare_children_[static_cast<std::size_t>(sp)]) {
      if (!leaf_failed[c])
        return c == leaf ? 1.0 : spare_dormancy_[static_cast<std::size_t>(sp)];
    }
    return 1.0;
  };

  const auto update_rates = [&](double now) {
    // Only RDEP targets and spare-pool members can ever leave factor 1.0;
    // rate_leaves_ lists exactly those, in ascending leaf order.
    for (std::uint32_t leaf : rate_leaves_) {
      double desired = spare_factor(leaf);
      for (std::uint32_t r : rdeps_by_leaf_[leaf]) {
        const RdepInfo& dep = rdep_info_[r];
        const bool active = dep.trigger_phase == 0
                                ? gates.node_true[dep.trigger_node] != 0
                                : phase[dep.trigger_leaf] >= dep.trigger_phase;
        if (active) desired *= dep.factor;
      }
      if (desired == accel[leaf]) continue;
      if (!leaf_failed[leaf] && !under_repair[leaf]) {
        // Rescale the remaining sojourn: faster degradation shrinks it. A
        // factor of zero freezes it; the natural-rate remainder is kept so
        // reactivation resumes exactly where the clock stopped.
        const double natural = accel[leaf] > 0
                                   ? (next_time[leaf] - now) * accel[leaf]
                                   : frozen_remaining[leaf];
        if (accel[leaf] > 0) queue.cancel(next_handle[leaf]);
        if (desired > 0) {
          next_time[leaf] = now + natural / desired;
          next_handle[leaf] = queue.schedule(next_time[leaf], Ev{Ev::Kind::Phase, leaf});
        } else {
          frozen_remaining[leaf] = natural;
          next_time[leaf] = std::numeric_limits<double>::infinity();
        }
      }
      accel[leaf] = desired;
      if (trace)
        trace->record(now, TraceKind::AccelerationChanged, leaf_name(leaf),
                      static_cast<std::int64_t>(std::llround(desired * 1000)));
    }
  };

  const auto renew_leaf = [&](std::uint32_t leaf, double now) {
    if (under_repair[leaf]) {
      // Renewal preempts the ongoing repair (the whole component is new).
      queue.cancel(repair_handle[leaf]);
      under_repair[leaf] = 0;
    } else if (!leaf_failed[leaf] && accel[leaf] > 0) {
      queue.cancel(next_handle[leaf]);
    }
    phase[leaf] = 1;
    set_leaf_failed(leaf, false);
    schedule_phase(leaf, now);
  };

  const auto end_downtime = [&](double now) {
    result.downtime += now - down_since;
    result.cost.downtime += corrective.downtime_cost_rate * (now - down_since);
    result.discounted_cost.downtime += discounted_downtime(down_since, now);
    system_down = false;
    if (corrective_pending) {
      queue.cancel(*corrective_pending);
      corrective_pending.reset();
    }
  };

  // FDEP cascade: failed triggers force their dependents to fail, possibly
  // enabling further triggers — iterate to the (monotone) fixpoint. The
  // incremental evaluator propagates each flip immediately; the reference
  // path re-evaluates wholesale after every changed round.
  const auto apply_fdeps = [&](double now) {
    if (fdep_trigger_node_.empty()) return;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t f = 0; f < fdep_trigger_node_.size(); ++f) {
        if (!gates.node_true[fdep_trigger_node_[f]]) continue;
        for (std::uint32_t leaf : fdep_dependents_[f]) {
          if (leaf_failed[leaf]) continue;
          if (under_repair[leaf]) {
            queue.cancel(repair_handle[leaf]);
            under_repair[leaf] = 0;
          } else if (accel[leaf] > 0) {
            queue.cancel(next_handle[leaf]);
          }
          phase[leaf] = model_.ebes()[leaf].degradation.phases() + 1;
          set_leaf_failed(leaf, true);
          changed = true;
          if (trace) trace->record(now, TraceKind::LeafFailed, leaf_name(leaf));
        }
      }
      if (changed && reference) eval_.recompute(gates);
    }
  };

  // Processes a potential top-event edge after leaf-state changes.
  // `cause` identifies the leaf responsible for a rising edge.
  const auto settle = [&](double now, std::optional<std::uint32_t> cause) {
    if (reference) {
      eval_.recompute(gates);
    }
#ifndef NDEBUG
    else {
      FMTREE_ASSERT(eval_.consistent(gates),
                    "incremental gate state diverged from full re-evaluation");
    }
#endif
    apply_fdeps(now);
    update_rates(now);
    const bool top_now = gates.node_true[top_node_] != 0;
    if (top_now && !system_down) {
      ++result.failures;
      result.first_failure_time = std::min(result.first_failure_time, now);
      const std::uint32_t cause_leaf = cause.value_or(0);
      FMTREE_ASSERT(cause.has_value(), "top event rose without a causing leaf");
      ++result.failures_per_leaf[cause_leaf];
      if (opts.record_failure_log)
        result.failure_log.push_back(FailureRecord{now, cause_leaf});
      result.cost.corrective += corrective.enabled ? corrective.cost : 0.0;
      result.discounted_cost.corrective +=
          corrective.enabled ? corrective.cost * discount(now) : 0.0;
      system_down = true;
      down_since = now;
      if (trace)
        trace->record(now, TraceKind::TopFailed, structure.name(model_.top()));
      if (corrective.enabled) {
        corrective_pending = queue.schedule(now + corrective.delay,
                                            Ev{Ev::Kind::CorrectiveDone, 0});
      }
    } else if (!top_now && system_down) {
      end_downtime(now);
      if (trace)
        trace->record(now, TraceKind::TopRestored, structure.name(model_.top()));
    }
  };

  // ---- Initial schedule -----------------------------------------------------
  for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf) schedule_phase(leaf, 0.0);
  for (std::size_t m = 0; m < model_.inspections().size(); ++m)
    queue.schedule(model_.inspections()[m].first_at,
                   Ev{Ev::Kind::Inspect, static_cast<std::uint32_t>(m)});
  for (std::size_t m = 0; m < model_.replacements().size(); ++m)
    queue.schedule(model_.replacements()[m].first_at,
                   Ev{Ev::Kind::Replace, static_cast<std::uint32_t>(m)});
  if (reference) eval_.recompute(gates);  // reset() already evaluated otherwise
  update_rates(0.0);  // apply initial spare dormancy

  // ---- Main loop ------------------------------------------------------------
  while (!queue.empty() && queue.peek_time() <= opts.horizon) {
    const auto event = queue.pop();
    const double now = event.time;
    ++result.events;
    switch (event.payload.kind) {
      case Ev::Kind::Phase: {
        const std::uint32_t leaf = event.payload.index;
        ++phase[leaf];
        const fmt::DegradationModel& deg = model_.ebes()[leaf].degradation;
        if (trace)
          trace->record(now, TraceKind::PhaseTransition, leaf_name(leaf), phase[leaf]);
        if (phase[leaf] > deg.phases()) {
          set_leaf_failed(leaf, true);
          if (trace) trace->record(now, TraceKind::LeafFailed, leaf_name(leaf));
          settle(now, leaf);
        } else {
          schedule_phase(leaf, now);
          // Phase progress cannot flip a gate, but it can activate a
          // phase-triggered rate dependency.
          settle(now, std::nullopt);
        }
        break;
      }
      case Ev::Kind::Inspect: {
        const fmt::InspectionModule& mod = model_.inspections()[event.payload.index];
        if (policy && !lang::round_active(*policy, event.payload.index, now)) {
          // Out-of-window seasonal visit: no cost, no round, just reschedule.
          queue.schedule(now + mod.period, Ev{Ev::Kind::Inspect, event.payload.index});
          break;
        }
        ++result.inspections;
        result.cost.inspection += mod.cost;
        result.discounted_cost.inspection += mod.cost * discount(now);
        if (trace) trace->record(now, TraceKind::InspectionPerformed, mod.name);
        // The engine's own repair bookkeeping, shared verbatim between the
        // built-in threshold sweep and the scripted-policy host so the two
        // paths accrue costs and schedule events identically per call.
        const auto do_repair = [&](std::uint32_t leaf) {
          const fmt::ExtendedBasicEvent& e = model_.ebes()[leaf];
          ++result.repairs;
          ++result.repairs_per_leaf[leaf];
          result.cost.repair += e.repair.cost;
          result.discounted_cost.repair += e.repair.cost * discount(now);
          if (trace) trace->record(now, TraceKind::RepairPerformed, e.name);
          if (e.repair.duration > 0) {
            // Timed repair: pause degradation until the crew finishes.
            queue.cancel(next_handle[leaf]);
            under_repair[leaf] = 1;
            repair_handle[leaf] =
                queue.schedule(now + e.repair.duration, Ev{Ev::Kind::RepairDone, leaf});
          } else {
            renew_leaf(leaf, now);
          }
        };
        if (policy) {
          const auto host = lang::make_host(
              [&](std::uint32_t leaf) { return static_cast<double>(phase[leaf]); },
              [&](std::uint32_t leaf) { return leaf_failed[leaf] != 0; },
              [&](std::uint32_t leaf) { return under_repair[leaf] != 0; },
              do_repair);
          lang::run_round(*policy, event.payload.index, now, host, ws.policy);
        } else {
          for (std::uint32_t leaf : inspection_targets_[event.payload.index]) {
            const fmt::ExtendedBasicEvent& e = model_.ebes()[leaf];
            if (leaf_failed[leaf]) continue;  // inspections cannot fix failures
            if (under_repair[leaf]) continue;  // a crew is already on it
            if (phase[leaf] < e.degradation.threshold_phase()) continue;
            // Imperfect inspections miss degradation with prob. 1 - p.
            if (mod.detection_probability < 1.0 &&
                !rng.bernoulli(mod.detection_probability)) {
              continue;
            }
            do_repair(leaf);
          }
        }
        // Repairs reset phases, which can deactivate phase-triggered rate
        // dependencies (failure states are untouched).
        settle(now, std::nullopt);
        queue.schedule(now + mod.period, Ev{Ev::Kind::Inspect, event.payload.index});
        break;
      }
      case Ev::Kind::Replace: {
        const fmt::ReplacementModule& mod = model_.replacements()[event.payload.index];
        ++result.replacements;
        result.cost.replacement += mod.cost;
        result.discounted_cost.replacement += mod.cost * discount(now);
        if (trace) trace->record(now, TraceKind::ReplacementPerformed, mod.name);
        for (std::uint32_t leaf : replacement_targets_[event.payload.index])
          renew_leaf(leaf, now);
        settle(now, std::nullopt);  // may restore a failed system
        queue.schedule(now + mod.period, Ev{Ev::Kind::Replace, event.payload.index});
        break;
      }
      case Ev::Kind::RepairDone: {
        const std::uint32_t leaf = event.payload.index;
        under_repair[leaf] = 0;
        phase[leaf] = 1;
        schedule_phase(leaf, now);
        if (trace) trace->record(now, TraceKind::RepairCompleted, leaf_name(leaf));
        settle(now, std::nullopt);  // phase reset may deactivate RDEPs
        break;
      }
      case Ev::Kind::CorrectiveDone: {
        corrective_pending.reset();
        for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf) renew_leaf(leaf, now);
        if (trace)
          trace->record(now, TraceKind::CorrectiveCompleted,
                        structure.name(model_.top()));
        settle(now, std::nullopt);
        break;
      }
    }
  }

  if (system_down) {
    result.downtime += opts.horizon - down_since;
    result.cost.downtime += corrective.downtime_cost_rate * (opts.horizon - down_since);
    result.discounted_cost.downtime += discounted_downtime(down_since, opts.horizon);
  }
  return result;
}

}  // namespace fmtree::sim
