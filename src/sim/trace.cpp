#include "sim/trace.hpp"

#include <iomanip>
#include <ostream>

namespace fmtree::sim {

std::vector<TraceEvent> Trace::of_kind(TraceKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_)
    if (e.kind == kind) out.push_back(e);
  return out;
}

void Trace::print(std::ostream& os) const {
  for (const TraceEvent& e : events_) {
    os << std::fixed << std::setprecision(6) << e.time << "  "
       << trace_kind_name(e.kind) << "  " << e.subject;
    if (e.detail != 0) os << "  (" << e.detail << ")";
    os << '\n';
  }
}

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::PhaseTransition: return "phase-transition";
    case TraceKind::LeafFailed: return "leaf-failed";
    case TraceKind::TopFailed: return "top-failed";
    case TraceKind::TopRestored: return "top-restored";
    case TraceKind::InspectionPerformed: return "inspection";
    case TraceKind::RepairPerformed: return "repair";
    case TraceKind::RepairCompleted: return "repair-done";
    case TraceKind::ReplacementPerformed: return "replacement";
    case TraceKind::CorrectiveCompleted: return "corrective-done";
    case TraceKind::AccelerationChanged: return "acceleration";
  }
  return "?";
}

}  // namespace fmtree::sim
