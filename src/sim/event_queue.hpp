// Discrete-event simulation primitives: a cancellable priority queue of
// timestamped events with deterministic tie-breaking.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fmtree::sim {

/// Handle to a scheduled event; valid until the event fires or is cancelled.
struct EventHandle {
  std::uint64_t seq = 0;
  friend bool operator==(EventHandle, EventHandle) = default;
};

/// Min-heap of events ordered by (time, insertion sequence). Cancellation is
/// lazy: cancelled entries are skipped on pop. Payloads are small value
/// types (the FMT executor uses a tagged struct).
///
/// The heap lives in a plain vector so reset() can drop all events while
/// keeping the allocated capacity — reusing one queue across millions of
/// trajectories costs no allocations in steady state.
template <typename Payload>
class EventQueue {
public:
  /// Schedules `payload` at absolute `time`; later pops return events in
  /// nondecreasing time order, FIFO among equal times.
  EventHandle schedule(double time, Payload payload) {
    FMTREE_ASSERT(!(time != time), "event time is NaN");
    const EventHandle h{next_seq_++};
    heap_.push_back(Entry{time, h.seq, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end());
    ++live_;
    return h;
  }

  /// Cancels a previously scheduled event. Cancelling an event that already
  /// fired (or was cancelled) is a no-op returning false.
  bool cancel(EventHandle h) {
    if (h.seq >= next_seq_) return false;
    const bool inserted = cancelled_.size() <= h.seq ? (grow_cancelled(h.seq), true)
                                                     : !cancelled_[h.seq];
    if (!inserted) return false;
    cancelled_[h.seq] = true;
    if (live_ > 0) --live_;
    return true;
  }

  bool empty() const noexcept { return live_ == 0; }
  std::size_t size() const noexcept { return live_; }

  struct Event {
    double time;
    EventHandle handle;
    Payload payload;
  };

  /// Pops the earliest live event. Precondition: !empty().
  Event pop() {
    skip_cancelled();
    FMTREE_ASSERT(!heap_.empty(), "pop on empty event queue");
    std::pop_heap(heap_.begin(), heap_.end());
    Entry top = std::move(heap_.back());
    heap_.pop_back();
    --live_;
    mark_fired(top.seq);
    return Event{top.time, EventHandle{top.seq}, std::move(top.payload)};
  }

  /// Time of the earliest live event. Precondition: !empty().
  double peek_time() {
    skip_cancelled();
    FMTREE_ASSERT(!heap_.empty(), "peek on empty event queue");
    return heap_.front().time;
  }

  void clear() {
    heap_.clear();
    cancelled_.clear();
    live_ = 0;
    // next_seq_ keeps counting so stale handles can never alias new events.
  }

  /// As clear(), but also restarts the sequence counter. Only safe when no
  /// handle from a previous epoch can still be presented (the simulation
  /// workspace calls this between trajectories, resetting all stored
  /// handles alongside); otherwise old handles would alias new events.
  void reset() {
    clear();
    next_seq_ = 0;
  }

private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Payload payload;
    // std::push_heap builds a max-heap; invert for (time, seq) min order.
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void grow_cancelled(std::uint64_t seq) {
    // Grow with slack: pop marks every fired sequence, so an exact-fit
    // resize here would run once per event.
    if (cancelled_.size() <= seq) {
      cancelled_.resize(std::max<std::size_t>(static_cast<std::size_t>(seq) + 64,
                                              cancelled_.size() * 2),
                        false);
    }
  }

  void mark_fired(std::uint64_t seq) {
    grow_cancelled(seq);
    cancelled_[seq] = true;  // a fired event can no longer be cancelled
  }

  void skip_cancelled() {
    while (!heap_.empty()) {
      const std::uint64_t seq = heap_.front().seq;
      if (seq < cancelled_.size() && cancelled_[seq]) {
        std::pop_heap(heap_.begin(), heap_.end());
        heap_.pop_back();
      } else {
        break;
      }
    }
  }

  std::vector<Entry> heap_;
  std::vector<bool> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace fmtree::sim
