#include "sim/batch_executor.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace fmtree::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Right edge of the ziggurat's base layer for Exp(1); samples beyond it
/// come from the analytic tail r + Exp(1).
constexpr double kZigguratR = 7.69711747013104972;

}  // namespace

// Table construction follows Marsaglia & Tsang's published setup: 256
// layers of equal area ve, x_255 = r, x_{i-1} = -log(exp(-x_i) + ve/x_i).
BatchExecutor::ExpZiggurat::ExpZiggurat() noexcept {
  constexpr double m = 4294967296.0;  // 2^32: draws are 32-bit integers
  constexpr double ve = 3.9496598225815571993e-3;
  double de = kZigguratR, te = kZigguratR;
  const double q = ve / std::exp(-de);
  ke_[0] = static_cast<std::uint32_t>((de / q) * m);
  ke_[1] = 0;
  we_[0] = q / m;
  we_[255] = de / m;
  fe_[0] = 1.0;
  fe_[255] = std::exp(-de);
  for (int i = 254; i >= 1; --i) {
    de = -std::log(ve / de + std::exp(-de));
    ke_[i + 1] = static_cast<std::uint32_t>((de / te) * m);
    te = de;
    fe_[i] = std::exp(-de);
    we_[i] = de / m;
  }
}

double BatchExecutor::ExpZiggurat::sample(CounterStream& rng) const noexcept {
  for (;;) {
    const auto j = static_cast<std::uint32_t>(rng() >> 32);
    const unsigned i = j & 255u;
    const double x = j * we_[i];
    if (j < ke_[i]) return x;  // inside the layer rectangle: ~98% of draws
    if (i == 0) return kZigguratR - std::log(rng.uniform01_open_left());
    if (fe_[i] + rng.uniform01() * (fe_[i - 1] - fe_[i]) < std::exp(-x)) return x;
  }
}

BatchExecutor::BatchExecutor(const fmt::FaultMaintenanceTree& model)
    : model_(model), eval_(model.structure()) {
  model.validate();
  top_node_ = model.top().value;
  num_leaves_ = static_cast<std::uint32_t>(model.num_ebes());

  const auto leaf_of = [&](fmt::NodeId id) {
    return static_cast<std::uint32_t>(model.ebe_index(id));
  };

  // ---- Sojourn samplers: Distribution variants flattened to tagged rows ----
  sampler_begin_.reserve(num_leaves_);
  num_phases_.reserve(num_leaves_);
  threshold_.reserve(num_leaves_);
  for (const fmt::ExtendedBasicEvent& ebe : model.ebes()) {
    const fmt::DegradationModel& deg = ebe.degradation;
    sampler_begin_.push_back(static_cast<std::uint32_t>(samplers_.size()));
    num_phases_.push_back(deg.phases());
    threshold_.push_back(deg.threshold_phase());
    repair_cost_.push_back(ebe.repair.cost);
    repair_duration_.push_back(ebe.repair.duration);
    for (int p = 1; p <= deg.phases(); ++p) {
      Sampler s;
      std::visit(
          [&s](const auto& d) {
            using T = std::decay_t<decltype(d)>;
            if constexpr (std::is_same_v<T, Exponential>) {
              s = {Sampler::Kind::Exponential, 1.0 / d.rate, 0.0};
            } else if constexpr (std::is_same_v<T, Erlang>) {
              s = {Sampler::Kind::Erlang, 1.0 / d.rate,
                   static_cast<double>(d.shape)};
            } else if constexpr (std::is_same_v<T, Weibull>) {
              s = {Sampler::Kind::Weibull, d.shape, d.scale};
            } else if constexpr (std::is_same_v<T, Lognormal>) {
              s = {Sampler::Kind::Lognormal, d.mu, d.sigma};
            } else if constexpr (std::is_same_v<T, UniformDist>) {
              s = {Sampler::Kind::Uniform, d.lo, d.hi};
            } else {
              static_assert(std::is_same_v<T, Deterministic>);
              s = {Sampler::Kind::Deterministic, d.value, 0.0};
            }
          },
          deg.sojourn(p).as_variant());
      samplers_.push_back(s);
    }
  }

  // ---- Maintenance modules with CSR target lists ---------------------------
  for (const fmt::InspectionModule& mod : model.inspections()) {
    InspectionInfo info;
    info.period = mod.period;
    info.first_at = mod.first_at;
    info.cost = mod.cost;
    info.detection_probability = mod.detection_probability;
    info.targets_begin = static_cast<std::uint32_t>(insp_targets_.size());
    for (fmt::NodeId t : mod.targets) insp_targets_.push_back(leaf_of(t));
    info.targets_end = static_cast<std::uint32_t>(insp_targets_.size());
    inspections_.push_back(info);
  }
  for (const fmt::ReplacementModule& mod : model.replacements()) {
    ReplacementInfo info;
    info.period = mod.period;
    info.first_at = mod.first_at;
    info.cost = mod.cost;
    info.targets_begin = static_cast<std::uint32_t>(repl_targets_.size());
    for (fmt::NodeId t : mod.targets) repl_targets_.push_back(leaf_of(t));
    info.targets_end = static_cast<std::uint32_t>(repl_targets_.size());
    replacements_.push_back(info);
  }

  // ---- Rate dependencies (CSR by dependent leaf) ---------------------------
  std::vector<std::vector<std::uint32_t>> rdeps_by_leaf(num_leaves_);
  for (std::size_t r = 0; r < model.rdeps().size(); ++r) {
    const fmt::RateDependency& dep = model.rdeps()[r];
    for (fmt::NodeId d : dep.dependents)
      rdeps_by_leaf[leaf_of(d)].push_back(static_cast<std::uint32_t>(r));
    RdepInfo info;
    info.trigger_node = dep.trigger.value;
    info.trigger_phase = dep.trigger_phase;
    info.factor = dep.factor;
    if (dep.trigger_phase >= 1) info.trigger_leaf = leaf_of(dep.trigger);
    rdep_info_.push_back(info);
  }
  rdep_begin_.reserve(num_leaves_ + 1);
  rdep_begin_.push_back(0);
  for (std::uint32_t leaf = 0; leaf < num_leaves_; ++leaf) {
    for (std::uint32_t r : rdeps_by_leaf[leaf]) rdep_edges_.push_back(r);
    rdep_begin_.push_back(static_cast<std::uint32_t>(rdep_edges_.size()));
  }

  // ---- Spare pools ---------------------------------------------------------
  spare_of_leaf_.assign(num_leaves_, -1);
  spare_begin_.push_back(0);
  for (std::size_t sp = 0; sp < model.spares().size(); ++sp) {
    for (fmt::NodeId child : model.spares()[sp].children) {
      spare_of_leaf_[leaf_of(child)] = static_cast<std::int32_t>(sp);
      spare_children_.push_back(leaf_of(child));
    }
    spare_begin_.push_back(static_cast<std::uint32_t>(spare_children_.size()));
    spare_dormancy_.push_back(model.spares()[sp].dormancy);
  }

  for (std::uint32_t leaf = 0; leaf < num_leaves_; ++leaf) {
    if (rdep_begin_[leaf + 1] != rdep_begin_[leaf] || spare_of_leaf_[leaf] >= 0)
      rate_leaves_.push_back(leaf);
  }

  // ---- Functional dependencies ---------------------------------------------
  fdep_begin_.push_back(0);
  for (const fmt::FunctionalDependency& dep : model.fdeps()) {
    fdep_trigger_node_.push_back(dep.trigger.value);
    for (fmt::NodeId d : dep.dependents) fdep_dependents_.push_back(leaf_of(d));
    fdep_begin_.push_back(static_cast<std::uint32_t>(fdep_dependents_.size()));
  }

  const fmt::CorrectivePolicy& corrective = model.corrective();
  corrective_enabled_ = corrective.enabled;
  corrective_delay_ = corrective.delay;
  corrective_cost_ = corrective.cost;
  downtime_cost_rate_ = corrective.downtime_cost_rate;
}

double BatchExecutor::sample_sojourn(std::uint32_t leaf, std::int32_t phase,
                                     CounterStream& rng) const {
  const Sampler& s = samplers_[sampler_begin_[leaf] + static_cast<std::uint32_t>(
                                                          phase - 1)];
  switch (s.kind) {
    case Sampler::Kind::Exponential:
      return zig_.sample(rng) * s.a;
    case Sampler::Kind::Erlang: {
      double sum = zig_.sample(rng);
      for (std::int32_t i = 1; i < static_cast<std::int32_t>(s.b); ++i)
        sum += zig_.sample(rng);
      return sum * s.a;
    }
    case Sampler::Kind::Weibull:
      return s.b * std::pow(-std::log(rng.uniform01_open_left()), 1.0 / s.a);
    case Sampler::Kind::Lognormal: {
      // Box–Muller, one variate per call — mirrors Distribution::sample.
      const double u1 = rng.uniform01_open_left();
      const double u2 = rng.uniform01();
      const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
      return std::exp(s.a + s.b * z);
    }
    case Sampler::Kind::Uniform:
      return rng.uniform(s.a, s.b);
    case Sampler::Kind::Deterministic:
      return s.a;
  }
  return kInf;  // unreachable
}

/// Mutable view of one lane's rows inside the workspace. Plain pointers so
/// the event loop indexes flat memory with no bounds rechecking. The four
/// clock pointers are offsets into one contiguous candidate row (leaf_time
/// is its base) — see BatchWorkspace::clock.
struct BatchExecutor::LaneContext {
  std::int32_t* phase = nullptr;
  double* accel = nullptr;
  double* frozen = nullptr;
  double* leaf_time = nullptr;
  std::uint8_t* failed = nullptr;
  std::uint8_t* under_repair = nullptr;
  double* inspect_time = nullptr;
  double* replace_time = nullptr;
  double* corrective_time = nullptr;
  std::uint8_t* system_down = nullptr;
  double* down_since = nullptr;
  GateEvaluator::State* gates = nullptr;
  CounterStream* rng = nullptr;
  lang::PolicyState* policy = nullptr;  ///< non-null iff a scripted policy runs
  TrajectoryResult* result = nullptr;
};

void BatchExecutor::simulate_lane(LaneContext& lane, const SimOptions& opts) const {
  const std::uint32_t num_leaves = num_leaves_;
  const auto num_insp = static_cast<std::uint32_t>(inspections_.size());
  const auto num_repl = static_cast<std::uint32_t>(replacements_.size());
  const double horizon = opts.horizon;
  const double discount_rate = opts.discount_rate;
  GateEvaluator::State& gates = *lane.gates;
  CounterStream& rng = *lane.rng;
  TrajectoryResult& result = *lane.result;

  const auto discount = [&](double now) {
    return discount_rate > 0 ? std::exp(-discount_rate * now) : 1.0;
  };
  const auto discounted_downtime = [&](double a, double b) {
    if (discount_rate <= 0) return downtime_cost_rate_ * (b - a);
    return downtime_cost_rate_ *
           (std::exp(-discount_rate * a) - std::exp(-discount_rate * b)) /
           discount_rate;
  };

  const auto schedule_phase = [&](std::uint32_t leaf, double now) {
    const double raw = sample_sojourn(leaf, lane.phase[leaf], rng);
    if (lane.accel[leaf] > 0) {
      lane.leaf_time[leaf] = now + raw / lane.accel[leaf];
    } else {
      // Frozen (cold spare): hold the sampled sojourn until reactivated.
      lane.frozen[leaf] = raw;
      lane.leaf_time[leaf] = kInf;
    }
  };

  const auto fail_leaf = [&](std::uint32_t leaf) {
    lane.under_repair[leaf] = 0;
    lane.leaf_time[leaf] = kInf;
    lane.failed[leaf] = 1;
    eval_.set_leaf(gates, leaf, true);
  };

  // The leaf currently active in a spare pool: its lowest-index non-failed
  // child (all-failed pools have no active member; the value is unused then).
  const auto spare_factor = [&](std::uint32_t leaf) {
    const std::int32_t sp = spare_of_leaf_[leaf];
    if (sp < 0) return 1.0;
    const auto spi = static_cast<std::size_t>(sp);
    for (std::uint32_t k = spare_begin_[spi]; k < spare_begin_[spi + 1]; ++k) {
      const std::uint32_t c = spare_children_[k];
      if (!lane.failed[c]) return c == leaf ? 1.0 : spare_dormancy_[spi];
    }
    return 1.0;
  };

  const auto update_rates = [&](double now) {
    for (std::uint32_t leaf : rate_leaves_) {
      double desired = spare_factor(leaf);
      for (std::uint32_t k = rdep_begin_[leaf]; k < rdep_begin_[leaf + 1]; ++k) {
        const RdepInfo& dep = rdep_info_[rdep_edges_[k]];
        const bool active = dep.trigger_phase == 0
                                ? gates.node_true[dep.trigger_node] != 0
                                : lane.phase[dep.trigger_leaf] >= dep.trigger_phase;
        if (active) desired *= dep.factor;
      }
      if (desired == lane.accel[leaf]) continue;
      if (!lane.failed[leaf] && !lane.under_repair[leaf]) {
        // Rescale the remaining sojourn; a factor of zero freezes it at its
        // natural-rate remainder so reactivation resumes where it stopped.
        const double natural = lane.accel[leaf] > 0
                                   ? (lane.leaf_time[leaf] - now) * lane.accel[leaf]
                                   : lane.frozen[leaf];
        if (desired > 0) {
          lane.leaf_time[leaf] = now + natural / desired;
        } else {
          lane.frozen[leaf] = natural;
          lane.leaf_time[leaf] = kInf;
        }
      }
      lane.accel[leaf] = desired;
    }
  };

  const auto renew_leaf = [&](std::uint32_t leaf, double now) {
    // Renewal preempts an ongoing repair and any pending transition; both
    // cancellations are plain stores here (schedule_phase overwrites the
    // clock, or parks it at +infinity while frozen).
    lane.under_repair[leaf] = 0;
    lane.phase[leaf] = 1;
    if (lane.failed[leaf]) {
      lane.failed[leaf] = 0;
      eval_.set_leaf(gates, leaf, false);
    }
    schedule_phase(leaf, now);
  };

  const auto end_downtime = [&](double now) {
    result.downtime += now - *lane.down_since;
    result.cost.downtime += downtime_cost_rate_ * (now - *lane.down_since);
    result.discounted_cost.downtime += discounted_downtime(*lane.down_since, now);
    *lane.system_down = 0;
    *lane.corrective_time = kInf;  // cancel a pending corrective renewal
  };

  // FDEP cascade: failed triggers force their dependents to fail, possibly
  // enabling further triggers — iterate to the (monotone) fixpoint.
  const auto apply_fdeps = [&]() {
    if (fdep_trigger_node_.empty()) return;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t f = 0; f < fdep_trigger_node_.size(); ++f) {
        if (!gates.node_true[fdep_trigger_node_[f]]) continue;
        for (std::uint32_t k = fdep_begin_[f]; k < fdep_begin_[f + 1]; ++k) {
          const std::uint32_t leaf = fdep_dependents_[k];
          if (lane.failed[leaf]) continue;
          lane.phase[leaf] = num_phases_[leaf] + 1;
          fail_leaf(leaf);
          changed = true;
        }
      }
    }
  };

  // Processes a potential top-event edge after leaf-state changes;
  // `cause` identifies the leaf responsible for a rising edge.
  const auto settle = [&](double now, std::uint32_t cause) {
    apply_fdeps();
    update_rates(now);
    const bool top_now = gates.node_true[top_node_] != 0;
    if (top_now && !*lane.system_down) {
      ++result.failures;
      result.first_failure_time = std::min(result.first_failure_time, now);
      ++result.failures_per_leaf[cause];
      if (opts.record_failure_log)
        result.failure_log.push_back(FailureRecord{now, cause});
      result.cost.corrective += corrective_enabled_ ? corrective_cost_ : 0.0;
      result.discounted_cost.corrective +=
          corrective_enabled_ ? corrective_cost_ * discount(now) : 0.0;
      *lane.system_down = 1;
      *lane.down_since = now;
      if (corrective_enabled_) *lane.corrective_time = now + corrective_delay_;
    } else if (!top_now && *lane.system_down) {
      end_downtime(now);
    }
  };

  // Apply initial spare dormancy (and any rate dependency active at t = 0):
  // run() samples every leaf at acceleration 1, exactly like the scalar
  // engine, and this rescales the affected sojourns before the first event.
  update_rates(0.0);

  // ---- Main loop: branch-free min-scan over the lane's candidate clocks ----
  // Candidate index space (= the merged clock row): [0, L) leaf events (phase
  // transition, or repair completion while under_repair), [L, L+Mi)
  // inspections, [L+Mi, L+Mi+Mr) replacements, L+Mi+Mr the pending
  // corrective renewal. Ties break toward the lowest index.
  const std::uint32_t insp_base = num_leaves;
  const std::uint32_t repl_base = insp_base + num_insp;
  const std::uint32_t corrective_idx = repl_base + num_repl;
  const double* clock = lane.leaf_time;  // base of the contiguous row

  while (true) {
    double best = clock[0];
    std::uint32_t best_idx = 0;
    for (std::uint32_t i = 1; i <= corrective_idx; ++i) {
      const double t = clock[i];
      const bool lt = t < best;
      best = lt ? t : best;
      best_idx = lt ? i : best_idx;
    }
    if (!(best <= horizon)) break;
    const double now = best;
    ++result.events;

    // Only failure-state changes can flip gates, and only gate flips can
    // fire FDEP triggers or the top event. Events that provably leave every
    // failure flag unchanged (phase advances, repair completions,
    // inspections — which never touch failed leaves) therefore settle with
    // update_rates alone; the full settle() runs only where a leaf fails or
    // a renewal may resurrect one.
    if (best_idx < num_leaves) {
      const std::uint32_t leaf = best_idx;
      if (lane.under_repair[leaf]) {
        // Repair completed: the component returns as new.
        lane.under_repair[leaf] = 0;
        lane.phase[leaf] = 1;
        schedule_phase(leaf, now);
        update_rates(now);  // phase reset may deactivate RDEPs
      } else {
        ++lane.phase[leaf];
        if (lane.phase[leaf] > num_phases_[leaf]) {
          fail_leaf(leaf);
          settle(now, leaf);
        } else {
          schedule_phase(leaf, now);
          // Cannot flip a gate, but can activate a phase-triggered RDEP.
          update_rates(now);
        }
      }
    } else if (best_idx < repl_base) {
      const std::uint32_t m = best_idx - insp_base;
      const InspectionInfo& mod = inspections_[m];
      const lang::BoundPolicy* policy = opts.bound_policy;
      if (policy && !lang::round_active(*policy, m, now)) {
        // Out-of-window seasonal visit: no cost, no round, just reschedule.
        lane.inspect_time[m] = now + mod.period;
        continue;
      }
      ++result.inspections;
      result.cost.inspection += mod.cost;
      result.discounted_cost.inspection += mod.cost * discount(now);
      // The engine's repair bookkeeping, shared between the built-in
      // threshold sweep and the scripted-policy host so both paths accrue
      // costs and set clocks identically per call.
      const auto do_repair = [&](std::uint32_t leaf) {
        ++result.repairs;
        ++result.repairs_per_leaf[leaf];
        result.cost.repair += repair_cost_[leaf];
        result.discounted_cost.repair += repair_cost_[leaf] * discount(now);
        if (repair_duration_[leaf] > 0) {
          // Timed repair: pause degradation until the crew finishes.
          lane.under_repair[leaf] = 1;
          lane.leaf_time[leaf] = now + repair_duration_[leaf];
        } else {
          renew_leaf(leaf, now);
        }
      };
      if (policy) {
        const auto host = lang::make_host(
            [&](std::uint32_t leaf) {
              return static_cast<double>(lane.phase[leaf]);
            },
            [&](std::uint32_t leaf) { return lane.failed[leaf] != 0; },
            [&](std::uint32_t leaf) { return lane.under_repair[leaf] != 0; },
            do_repair);
        lang::run_round(*policy, m, now, host, *lane.policy);
      } else {
        for (std::uint32_t k = mod.targets_begin; k < mod.targets_end; ++k) {
          const std::uint32_t leaf = insp_targets_[k];
          if (lane.failed[leaf]) continue;       // inspections cannot fix failures
          if (lane.under_repair[leaf]) continue;  // a crew is already on it
          if (lane.phase[leaf] < threshold_[leaf]) continue;
          // Imperfect inspections miss degradation with prob. 1 - p.
          if (mod.detection_probability < 1.0 &&
              !rng.bernoulli(mod.detection_probability)) {
            continue;
          }
          do_repair(leaf);
        }
      }
      // Repairs reset phases, which can deactivate phase-triggered rate
      // dependencies (failure states are untouched, so no gate can flip).
      update_rates(now);
      lane.inspect_time[m] = now + mod.period;
    } else if (best_idx < corrective_idx) {
      const std::uint32_t m = best_idx - repl_base;
      const ReplacementInfo& mod = replacements_[m];
      ++result.replacements;
      result.cost.replacement += mod.cost;
      result.discounted_cost.replacement += mod.cost * discount(now);
      for (std::uint32_t k = mod.targets_begin; k < mod.targets_end; ++k)
        renew_leaf(repl_targets_[k], now);
      settle(now, 0);  // may restore a failed system
      lane.replace_time[m] = now + mod.period;
    } else {
      // Corrective renewal: the whole system returns as new.
      *lane.corrective_time = kInf;
      for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf)
        renew_leaf(leaf, now);
      settle(now, 0);
    }
  }

  if (*lane.system_down) {
    result.downtime += horizon - *lane.down_since;
    result.cost.downtime += downtime_cost_rate_ * (horizon - *lane.down_since);
    result.discounted_cost.downtime +=
        discounted_downtime(*lane.down_since, horizon);
  }
}

void BatchExecutor::run(std::uint64_t seed, std::uint64_t first, std::uint32_t n,
                        const SimOptions& opts, BatchWorkspace& ws) const {
  if (!(opts.horizon > 0)) throw DomainError("simulation horizon must be positive");
  if (opts.discount_rate < 0) throw DomainError("discount rate must be >= 0");
  if (opts.trace != nullptr)
    throw DomainError("traces are per-trajectory; run the scalar simulator");
  const std::uint32_t num_leaves = num_leaves_;
  const auto num_insp = static_cast<std::uint32_t>(inspections_.size());
  const auto num_repl = static_cast<std::uint32_t>(replacements_.size());

  // ---- Reset the SoA state (no reallocation when sizes are unchanged) ------
  const std::size_t cells = static_cast<std::size_t>(n) * num_leaves;
  const std::uint32_t num_clocks = num_leaves + num_insp + num_repl + 1;
  ws.phase.assign(cells, 1);
  ws.accel.assign(cells, 1.0);
  ws.frozen_remaining.assign(cells, 0.0);
  ws.leaf_failed.assign(cells, 0);
  ws.under_repair.assign(cells, 0);
  ws.clock.assign(static_cast<std::size_t>(n) * num_clocks, kInf);
  ws.system_down.assign(n, 0);
  ws.down_since.assign(n, 0.0);
  ws.gates.resize(n);
  ws.results.resize(n);
  ws.rng.clear();
  ws.rng.reserve(n);
  for (std::uint32_t lane = 0; lane < n; ++lane)
    ws.rng.emplace_back(seed, first + lane);
  if (opts.bound_policy) {
    ws.policy.resize(n);
    for (std::uint32_t lane = 0; lane < n; ++lane)
      ws.policy[lane].reset(*opts.bound_policy);
  }

  for (std::uint32_t lane = 0; lane < n; ++lane) {
    eval_.reset(ws.gates[lane]);
    TrajectoryResult& r = ws.results[lane];
    r = TrajectoryResult{};
    r.horizon = opts.horizon;
    r.repairs_per_leaf.assign(num_leaves, 0);
    r.failures_per_leaf.assign(num_leaves, 0);
    double* row = ws.clock.data() + static_cast<std::size_t>(lane) * num_clocks;
    for (std::uint32_t m = 0; m < num_insp; ++m)
      row[num_leaves + m] = inspections_[m].first_at;
    for (std::uint32_t m = 0; m < num_repl; ++m)
      row[num_leaves + num_insp + m] = replacements_[m].first_at;
    // The corrective slot (last) stays +infinity: no renewal pending.
  }

  // ---- Initial firing times: all leaves x lanes sampled in one pass --------
  // Every lane starts with phase 1 and acceleration 1, so this is exactly
  // what schedule_phase would draw leaf-by-leaf — hoisted out of the event
  // loop into a contiguous sweep over the SoA block.
  for (std::uint32_t lane = 0; lane < n; ++lane) {
    CounterStream& rng = ws.rng[lane];
    double* row = ws.clock.data() + static_cast<std::size_t>(lane) * num_clocks;
    for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf)
      row[leaf] = sample_sojourn(leaf, 1, rng);
  }

  // ---- Per-lane event loops -------------------------------------------------
  for (std::uint32_t lane = 0; lane < n; ++lane) {
    const std::size_t row = static_cast<std::size_t>(lane) * num_leaves;
    double* clock = ws.clock.data() + static_cast<std::size_t>(lane) * num_clocks;
    LaneContext ctx;
    ctx.phase = ws.phase.data() + row;
    ctx.accel = ws.accel.data() + row;
    ctx.frozen = ws.frozen_remaining.data() + row;
    ctx.leaf_time = clock;
    ctx.failed = ws.leaf_failed.data() + row;
    ctx.under_repair = ws.under_repair.data() + row;
    ctx.inspect_time = clock + num_leaves;
    ctx.replace_time = clock + num_leaves + num_insp;
    ctx.corrective_time = clock + num_leaves + num_insp + num_repl;
    ctx.system_down = &ws.system_down[lane];
    ctx.down_since = &ws.down_since[lane];
    ctx.gates = &ws.gates[lane];
    ctx.rng = &ws.rng[lane];
    if (opts.bound_policy) ctx.policy = &ws.policy[lane];
    ctx.result = &ws.results[lane];
    simulate_lane(ctx, opts);
  }
}

}  // namespace fmtree::sim
