// Discrete-event execution of the full fault-maintenance-tree semantics.
//
// Semantics implemented (matching the FMT formalism):
//  * each leaf degrades through its phases; phase sojourn times are sampled
//    from the leaf's DegradationModel and divided by the leaf's current
//    acceleration factor;
//  * RDEP: while a rate dependency's trigger event holds, its dependents'
//    factors are multiplied in; a factor change mid-phase rescales the
//    *remaining* sojourn time (remaining' = remaining * old/new);
//  * inspections fire periodically; each non-failed target at/past its
//    threshold phase is repaired (reset to phase 1, fresh sample, repair
//    cost booked). Failed leaves are not repairable by inspection;
//  * replacements fire periodically and renew their targets unconditionally
//    (including failed ones);
//  * when the top event rises, a failure is counted; if corrective
//    maintenance is enabled, the whole system is renewed `delay` time units
//    later. Time with the top event true is downtime;
//  * all costs accrue into a CostBreakdown.
//
// Performance architecture: the boolean structure is evaluated incrementally
// (GateEvaluator — O(changed region) per leaf flip instead of O(nodes) per
// event), and all per-trajectory mutable state lives in a reusable
// SimWorkspace so running millions of trajectories allocates nothing in
// steady state. Both are observationally equivalent to the straightforward
// implementation: the random-draw sequence of a (seed, stream) pair is
// unchanged, so every result is bit-for-bit identical.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "fmt/fmtree.hpp"
#include "fmtree/run_settings.hpp"
#include "lang/runtime.hpp"
#include "sim/event_queue.hpp"
#include "sim/gate_eval.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace fmtree::sim {

namespace detail {
/// Tagged event payload of the FMT executor's queue.
struct Ev {
  enum class Kind : std::uint8_t { Phase, Inspect, Replace, CorrectiveDone, RepairDone };
  Kind kind = Kind::Phase;
  std::uint32_t index = 0;  // leaf index or module index
};
}  // namespace detail

/// One system-level failure during a trajectory.
struct FailureRecord {
  double time = 0.0;
  /// Leaf index (model.leaves() order) whose phase transition triggered the
  /// top event — the proximate cause used for incident attribution.
  std::uint32_t cause_leaf = 0;
};

struct TrajectoryResult {
  double horizon = 0.0;
  /// Time of the first top-event failure; +infinity if none before horizon.
  double first_failure_time = std::numeric_limits<double>::infinity();
  std::uint64_t failures = 0;
  double downtime = 0.0;
  fmt::CostBreakdown cost;
  /// Net-present-value costs: each accrual weighted by exp(-r * t) with
  /// r = SimOptions::discount_rate. Equals `cost` when the rate is zero.
  fmt::CostBreakdown discounted_cost;
  std::uint64_t inspections = 0;   ///< inspection rounds performed
  std::uint64_t repairs = 0;       ///< condition-based repair actions
  std::uint64_t replacements = 0;  ///< planned replacement rounds
  std::uint64_t events = 0;        ///< discrete events processed (perf metric)
  /// Per-leaf count of condition-based repairs (model.leaves() order).
  std::vector<std::uint64_t> repairs_per_leaf;
  /// Per-leaf count of system failures attributed to the leaf.
  std::vector<std::uint64_t> failures_per_leaf;
  /// Filled when SimOptions::record_failure_log is set.
  std::vector<FailureRecord> failure_log;

  bool survived() const noexcept {
    return first_failure_time > horizon;
  }
};

/// Per-run simulator options. Embeds fmtree::RunSettings: the simulator
/// itself honors `horizon` and (through ParallelRunner) `telemetry`; the
/// inherited seed/threads/control fields are consumed by batch drivers, not
/// by the single-trajectory executor — stream identity always comes from
/// the RandomStream handed to run().
struct SimOptions : fmtree::RunSettings {
  /// The single-trajectory default horizon stays 1.0 (the batch layers
  /// always set it explicitly from their own settings).
  SimOptions() noexcept { horizon = 1.0; }

  bool record_failure_log = false;
  /// Cap on the total number of FailureRecord entries a ParallelRunner batch
  /// retains across all trajectories when record_failure_log is set.
  /// Trajectory logs that would exceed the cap are dropped whole and the
  /// batch is flagged failure_logs_truncated; per-trajectory statistics are
  /// unaffected (logs are auxiliary). Which logs near the boundary are
  /// dropped depends on thread scheduling; at one thread the retained set is
  /// the deterministic index-order prefix that fits.
  std::uint64_t failure_log_cap = std::uint64_t{1} << 24;
  /// Continuous discount rate r for net-present-value cost accounting:
  /// a cost c at time t contributes c * exp(-r t) to discounted_cost.
  double discount_rate = 0.0;
  /// Evaluate the fault tree by full bottom-up recomputation on every event
  /// instead of incrementally. Slow; exists as the benchmark baseline and
  /// as the oracle for equivalence tests. Results are identical either way.
  bool reference_engine = false;
  /// Scripted maintenance policy bound to *this simulator's model* (which
  /// must already be the lang::apply_policy transform of the original).
  /// When set, inspection events run the compiled rules through the
  /// executor-callback host instead of the built-in threshold sweep.
  /// The BoundPolicy (and the CompiledPolicy it references) must outlive
  /// every run. nullptr = built-in semantics.
  const lang::BoundPolicy* bound_policy = nullptr;
  Trace* trace = nullptr;  ///< optional event log (slows the run; tests only)
};

/// All mutable per-trajectory state of one FmtSimulator::run call. Reusing a
/// workspace across trajectories (one per worker thread) eliminates the
/// dozen-plus vector allocations a cold run() performs. A workspace carries
/// no results between runs — run() fully re-initialises it — and may be
/// handed to simulators of different models (it is resized to fit).
struct SimWorkspace {
  std::vector<int> phase;
  std::vector<double> accel;
  std::vector<double> frozen_remaining;  // natural-rate time left while accel == 0
  std::vector<double> next_time;
  std::vector<EventHandle> next_handle;
  std::vector<EventHandle> repair_handle;
  std::vector<char> leaf_failed;
  std::vector<char> under_repair;
  GateEvaluator::State gates;
  EventQueue<detail::Ev> queue;
  lang::PolicyState policy;  ///< scripted-policy VM state (unused otherwise)
};

/// Executes trajectories of one FMT. Immutable after construction; run() is
/// const and re-entrant, so a single instance may be shared across threads
/// (each thread using its own SimWorkspace).
class FmtSimulator {
public:
  /// Validates the model. The model must outlive the simulator.
  explicit FmtSimulator(const fmt::FaultMaintenanceTree& model);

  /// Simulates one trajectory on the given random stream using a private,
  /// freshly allocated workspace.
  TrajectoryResult run(RandomStream rng, const SimOptions& opts) const;

  /// As above, but reuses `ws` (reset on entry). The hot path for batch
  /// Monte-Carlo: same results, no per-trajectory allocation churn.
  TrajectoryResult run(RandomStream rng, const SimOptions& opts, SimWorkspace& ws) const;

  const fmt::FaultMaintenanceTree& model() const noexcept { return model_; }
  const GateEvaluator& evaluator() const noexcept { return eval_; }

private:
  /// Flattened view of one rate dependency (hot-loop form of RateDependency:
  /// no strings, node/leaf ids pre-resolved).
  struct RdepInfo {
    std::uint32_t trigger_node = 0;  ///< structure node id (event semantics)
    std::uint32_t trigger_leaf = 0;  ///< leaf index; valid iff trigger_phase >= 1
    int trigger_phase = 0;
    double factor = 1.0;
  };

  const fmt::FaultMaintenanceTree& model_;
  GateEvaluator eval_;
  std::uint32_t top_node_ = 0;  ///< model_.top().value, cached
  std::vector<std::vector<std::uint32_t>> rdeps_by_leaf_;  // rdep indices per leaf
  std::vector<RdepInfo> rdep_info_;                        // parallel to model_.rdeps()
  std::vector<std::int32_t> spare_of_leaf_;  // spare-spec index per leaf, -1 = none
  std::vector<std::vector<std::uint32_t>> spare_children_;  // leaf indices per pool
  std::vector<double> spare_dormancy_;
  /// Leaves whose acceleration factor can ever differ from 1 (RDEP targets
  /// and spare-pool members) — the only ones update_rates must visit.
  std::vector<std::uint32_t> rate_leaves_;
  // Maintenance-module targets and FDEP edges resolved to leaf indices once,
  // so the event loop never performs name/id lookups.
  std::vector<std::vector<std::uint32_t>> inspection_targets_;
  std::vector<std::vector<std::uint32_t>> replacement_targets_;
  std::vector<std::uint32_t> fdep_trigger_node_;
  std::vector<std::vector<std::uint32_t>> fdep_dependents_;
};

}  // namespace fmtree::sim
