// Discrete-event execution of the full fault-maintenance-tree semantics.
//
// Semantics implemented (matching the FMT formalism):
//  * each leaf degrades through its phases; phase sojourn times are sampled
//    from the leaf's DegradationModel and divided by the leaf's current
//    acceleration factor;
//  * RDEP: while a rate dependency's trigger event holds, its dependents'
//    factors are multiplied in; a factor change mid-phase rescales the
//    *remaining* sojourn time (remaining' = remaining * old/new);
//  * inspections fire periodically; each non-failed target at/past its
//    threshold phase is repaired (reset to phase 1, fresh sample, repair
//    cost booked). Failed leaves are not repairable by inspection;
//  * replacements fire periodically and renew their targets unconditionally
//    (including failed ones);
//  * when the top event rises, a failure is counted; if corrective
//    maintenance is enabled, the whole system is renewed `delay` time units
//    later. Time with the top event true is downtime;
//  * all costs accrue into a CostBreakdown.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "fmt/fmtree.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace fmtree::sim {

/// One system-level failure during a trajectory.
struct FailureRecord {
  double time = 0.0;
  /// Leaf index (model.leaves() order) whose phase transition triggered the
  /// top event — the proximate cause used for incident attribution.
  std::uint32_t cause_leaf = 0;
};

struct TrajectoryResult {
  double horizon = 0.0;
  /// Time of the first top-event failure; +infinity if none before horizon.
  double first_failure_time = std::numeric_limits<double>::infinity();
  std::uint64_t failures = 0;
  double downtime = 0.0;
  fmt::CostBreakdown cost;
  /// Net-present-value costs: each accrual weighted by exp(-r * t) with
  /// r = SimOptions::discount_rate. Equals `cost` when the rate is zero.
  fmt::CostBreakdown discounted_cost;
  std::uint64_t inspections = 0;   ///< inspection rounds performed
  std::uint64_t repairs = 0;       ///< condition-based repair actions
  std::uint64_t replacements = 0;  ///< planned replacement rounds
  /// Per-leaf count of condition-based repairs (model.leaves() order).
  std::vector<std::uint64_t> repairs_per_leaf;
  /// Per-leaf count of system failures attributed to the leaf.
  std::vector<std::uint64_t> failures_per_leaf;
  /// Filled when SimOptions::record_failure_log is set.
  std::vector<FailureRecord> failure_log;

  bool survived() const noexcept {
    return first_failure_time > horizon;
  }
};

struct SimOptions {
  double horizon = 1.0;
  bool record_failure_log = false;
  /// Continuous discount rate r for net-present-value cost accounting:
  /// a cost c at time t contributes c * exp(-r t) to discounted_cost.
  double discount_rate = 0.0;
  Trace* trace = nullptr;  ///< optional event log (slows the run; tests only)
};

/// Executes trajectories of one FMT. Immutable after construction; run() is
/// const and re-entrant, so a single instance may be shared across threads.
class FmtSimulator {
public:
  /// Validates the model. The model must outlive the simulator.
  explicit FmtSimulator(const fmt::FaultMaintenanceTree& model);

  /// Simulates one trajectory on the given random stream.
  TrajectoryResult run(RandomStream rng, const SimOptions& opts) const;

  const fmt::FaultMaintenanceTree& model() const noexcept { return model_; }

private:
  const fmt::FaultMaintenanceTree& model_;
  std::vector<std::vector<std::uint32_t>> rdeps_by_leaf_;  // rdep indices per leaf
  std::vector<std::int32_t> spare_of_leaf_;  // spare-spec index per leaf, -1 = none
};

}  // namespace fmtree::sim
