// Incremental evaluation of a fault tree's boolean structure.
//
// The discrete-event executor flips one leaf at a time (a phase transition
// failing a leaf, a repair restoring it, an FDEP cascade); recomputing every
// gate on each flip costs O(nodes) per event. GateEvaluator instead keeps a
// failed-child counter per gate and propagates a flip only along paths whose
// truth value actually changed — O(depth of the changed region) per event.
//
// All gate types reduce to a counter threshold: AND fires at |children|
// failed, OR at 1, VOT(k/N) at k. Because the structure is monotone (no
// negation), a single leaf flip moves every counter in the same direction,
// so each node changes truth at most once per flip and a plain worklist
// yields the exact fixpoint, DAGs (shared subtrees) included.
//
// The evaluator itself is immutable and shareable across threads; all
// mutable evaluation state lives in a GateEvaluator::State owned by the
// caller (one per worker, reused across trajectories).
#pragma once

#include <cstdint>
#include <vector>

#include "ft/tree.hpp"

namespace fmtree::sim {

class GateEvaluator {
public:
  /// Flattens the tree into CSR adjacency arrays. The tree must outlive no
  /// one: the evaluator copies everything it needs.
  explicit GateEvaluator(const ft::FaultTree& tree);

  /// Mutable evaluation state: truth value per node plus the failed-child
  /// counter per gate. Plain vectors so a reset is two assigns.
  struct State {
    std::vector<char> node_true;               ///< per node: event holds?
    std::vector<std::int32_t> failed_children; ///< per gate node: #true children
    std::vector<std::uint32_t> worklist;       ///< propagation scratch
  };

  /// Sizes `s` for this tree and evaluates the all-leaves-healthy state.
  void reset(State& s) const;

  /// Flips leaf `leaf` (basic-event index) to `failed` and propagates the
  /// change upward. No-op if the leaf already has that value.
  void set_leaf(State& s, std::uint32_t leaf, bool failed) const;

  /// Reference path: full bottom-up re-evaluation of every gate from the
  /// leaf values currently in `s.node_true`, rebuilding the counters. Used
  /// by the pre-incremental benchmark baseline and as the test oracle.
  void recompute(State& s) const;

  /// Writes a leaf value without propagating (reference path only; follow
  /// with recompute()).
  void set_leaf_raw(State& s, std::uint32_t leaf, bool failed) const {
    s.node_true[leaf_nodes_[leaf]] = failed ? 1 : 0;
  }

  bool value(const State& s, ft::NodeId node) const {
    return s.node_true[node.value] != 0;
  }

  /// True iff the incremental state equals a from-scratch re-evaluation of
  /// the same leaf values (debug cross-check).
  bool consistent(const State& s) const;

  std::size_t node_count() const noexcept { return thresholds_.size(); }
  std::uint32_t leaf_node(std::uint32_t leaf) const { return leaf_nodes_[leaf]; }

private:
  // Per node: firing threshold on the failed-child counter; leaves get a
  // sentinel of INT32_MAX so they can never fire from a counter.
  std::vector<std::int32_t> thresholds_;
  std::vector<char> is_gate_;
  // CSR: parents of each node (edges child -> parent gate).
  std::vector<std::uint32_t> parent_begin_;
  std::vector<std::uint32_t> parent_edges_;
  // CSR: children of each gate node (empty range for leaves); recompute only.
  std::vector<std::uint32_t> child_begin_;
  std::vector<std::uint32_t> child_edges_;
  // Basic-event index -> node id.
  std::vector<std::uint32_t> leaf_nodes_;
};

}  // namespace fmtree::sim
