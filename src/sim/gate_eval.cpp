#include "sim/gate_eval.hpp"

#include <limits>

#include "util/error.hpp"

namespace fmtree::sim {

GateEvaluator::GateEvaluator(const ft::FaultTree& tree) {
  const std::size_t n = tree.node_count();
  thresholds_.assign(n, std::numeric_limits<std::int32_t>::max());
  is_gate_.assign(n, 0);
  parent_begin_.assign(n + 1, 0);
  child_begin_.assign(n + 1, 0);

  // Pass 1: thresholds, degree counts.
  for (std::uint32_t id = 0; id < n; ++id) {
    const ft::NodeId node{id};
    if (tree.is_basic(node)) continue;
    const ft::Gate& g = tree.gate(node);
    is_gate_[id] = 1;
    switch (g.type) {
      case ft::GateType::And:
        thresholds_[id] = static_cast<std::int32_t>(g.children.size());
        break;
      case ft::GateType::Or:
        thresholds_[id] = 1;
        break;
      case ft::GateType::Voting:
        thresholds_[id] = g.k;
        break;
    }
    child_begin_[id + 1] = static_cast<std::uint32_t>(g.children.size());
    for (ft::NodeId c : g.children) ++parent_begin_[c.value + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    parent_begin_[i] += parent_begin_[i - 1];
    child_begin_[i] += child_begin_[i - 1];
  }

  // Pass 2: fill edges.
  parent_edges_.resize(parent_begin_[n]);
  child_edges_.resize(child_begin_[n]);
  std::vector<std::uint32_t> cursor(parent_begin_.begin(), parent_begin_.end() - 1);
  for (std::uint32_t id = 0; id < n; ++id) {
    const ft::NodeId node{id};
    if (!is_gate_[id]) continue;
    const ft::Gate& g = tree.gate(node);
    std::uint32_t out = child_begin_[id];
    for (ft::NodeId c : g.children) {
      child_edges_[out++] = c.value;
      parent_edges_[cursor[c.value]++] = id;
    }
  }

  leaf_nodes_.reserve(tree.basic_events().size());
  for (ft::NodeId leaf : tree.basic_events()) leaf_nodes_.push_back(leaf.value);
}

void GateEvaluator::reset(State& s) const {
  const std::size_t n = node_count();
  s.node_true.assign(n, 0);
  s.failed_children.assign(n, 0);
  s.worklist.clear();
  // Gates with an (degenerate) empty child list have threshold 0 and hold
  // even with no failures; a plain recompute covers that uniformly.
  recompute(s);
}

void GateEvaluator::set_leaf(State& s, std::uint32_t leaf, bool failed) const {
  const std::uint32_t node = leaf_nodes_[leaf];
  const char v = failed ? 1 : 0;
  if (s.node_true[node] == v) return;
  s.node_true[node] = v;
  const std::int32_t delta = failed ? 1 : -1;
  // Monotone structure: one flip moves all counters the same direction, so
  // every node flips at most once and the worklist terminates on DAGs too.
  auto& wl = s.worklist;
  wl.clear();
  wl.push_back(node);
  while (!wl.empty()) {
    const std::uint32_t c = wl.back();
    wl.pop_back();
    for (std::uint32_t e = parent_begin_[c]; e < parent_begin_[c + 1]; ++e) {
      const std::uint32_t p = parent_edges_[e];
      s.failed_children[p] += delta;
      const char pv = s.failed_children[p] >= thresholds_[p] ? 1 : 0;
      if (pv != s.node_true[p]) {
        s.node_true[p] = pv;
        wl.push_back(p);
      }
    }
  }
}

void GateEvaluator::recompute(State& s) const {
  // Children are created before parents, so ascending id order is a valid
  // bottom-up schedule (same argument as the original full evaluation).
  const std::size_t n = node_count();
  for (std::uint32_t id = 0; id < n; ++id) {
    if (!is_gate_[id]) continue;
    std::int32_t count = 0;
    for (std::uint32_t e = child_begin_[id]; e < child_begin_[id + 1]; ++e)
      count += s.node_true[child_edges_[e]];
    s.failed_children[id] = count;
    s.node_true[id] = count >= thresholds_[id] ? 1 : 0;
  }
}

bool GateEvaluator::consistent(const State& s) const {
  State ref;
  ref.node_true = s.node_true;  // leaf entries are the inputs
  ref.failed_children.assign(node_count(), 0);
  recompute(ref);
  return ref.node_true == s.node_true && ref.failed_children == s.failed_children;
}

}  // namespace fmtree::sim
