// Trajectory traces: a readable record of everything that happened during
// one simulated run, used by semantic tests and for debugging models.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fmtree::sim {

enum class TraceKind {
  PhaseTransition,      ///< subject = leaf, detail = new phase
  LeafFailed,           ///< subject = leaf
  TopFailed,            ///< subject = top gate
  TopRestored,          ///< subject = top gate
  InspectionPerformed,  ///< subject = inspection module
  RepairPerformed,      ///< subject = leaf (condition-based repair started)
  RepairCompleted,      ///< subject = leaf (timed repair finished)
  ReplacementPerformed, ///< subject = replacement module
  CorrectiveCompleted,  ///< subject = top gate
  AccelerationChanged,  ///< subject = leaf, detail = new factor (x1000, rounded)
};

struct TraceEvent {
  double time = 0.0;
  TraceKind kind = TraceKind::PhaseTransition;
  std::string subject;
  std::int64_t detail = 0;
};

/// Append-only event log. Kept separate from the simulator so recording can
/// be disabled (nullptr) with zero overhead on hot paths.
class Trace {
public:
  void record(double time, TraceKind kind, std::string subject, std::int64_t detail = 0) {
    events_.push_back(TraceEvent{time, kind, std::move(subject), detail});
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  /// All events of one kind, in time order.
  std::vector<TraceEvent> of_kind(TraceKind kind) const;

  /// Human-readable dump (one line per event).
  void print(std::ostream& os) const;

private:
  std::vector<TraceEvent> events_;
};

const char* trace_kind_name(TraceKind kind);

}  // namespace fmtree::sim
