// The socket client of the serve daemon: connects, sends one
// "fmtree.request/v1" document, streams the "fmtree.response/v1" events back
// and returns the decoded Response. `fmtree sweep --connect` is a thin
// wrapper around this — the same Response type comes back whether the
// analysis ran in-process (serve::Session) or across the socket, and the
// decoded reports are bit-identical to the server's computation
// (serve/protocol.hpp explains why).
//
// Failure mapping: transport problems (connect/read/write, a connection that
// dies before a terminal event, a malformed event) throw RequestError R121;
// a server-sent error event is rethrown as the matching exception —
// AdmissionError for R120, RequestError carrying the server's code and
// diagnostics otherwise.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "obs/progress.hpp"
#include "serve/request.hpp"
#include "serve/session.hpp"

namespace fmtree::serve {

/// Optional event callbacks; leave empty to just wait for the result.
struct ClientEvents {
  std::function<void(const std::string& id, std::size_t jobs)> accepted;
  std::function<void(const obs::Progress&)> progress;
};

/// Executes `request` against the daemon at `socket_path`. Blocks until the
/// terminal event. Throws AdmissionError / RequestError as described above.
Response request_over_socket(const std::string& socket_path, const Request& request,
                             const ClientEvents& events = {});

}  // namespace fmtree::serve
