#include "serve/protocol.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "batch/result_cache.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/fingerprint.hpp"
#include "util/json.hpp"

namespace fmtree::serve {

namespace {

constexpr std::string_view kSchema = "fmtree.response/v1";

/// The phase literals progress producers use (obs/progress.hpp). Decoded
/// phases are interned to these so Event::progress.phase never dangles.
constexpr std::string_view kPhases[] = {"sweep", "simulate", "solve", "refine"};

[[noreturn]] void bad_wire(const std::string& what) {
  throw RequestError("R121", "malformed response event: " + what,
                     "client and server disagree on fmtree.response/v1; check "
                     "that both run compatible fmtree versions");
}

std::string hexfloat(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string diagnostics_json(const std::vector<Diagnostic>& items) {
  Diagnostics sink;
  for (const Diagnostic& d : items) sink.add(d);
  return sink.to_json();
}

const json::Value& member(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) bad_wire(std::string("missing member '") + key + "'");
  return *v;
}

std::string get_string(const json::Value& obj, const char* key) {
  const json::Value& v = member(obj, key);
  if (!v.is(json::Kind::String))
    bad_wire(std::string("member '") + key + "' must be a string");
  return v.text;
}

std::string get_string_or(const json::Value& obj, const char* key,
                          std::string fallback = {}) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (!v->is(json::Kind::String))
    bad_wire(std::string("member '") + key + "' must be a string");
  return v->text;
}

std::uint64_t get_u64(const json::Value& obj, const char* key) {
  return member(obj, key).as_u64();
}

/// Doubles travel as hexfloat strings (exact) but plain numbers are accepted
/// too, mirroring the request schema's tolerance.
double get_double(const json::Value& obj, const char* key) {
  const json::Value& v = member(obj, key);
  if (v.is(json::Kind::Number)) return v.as_double();
  if (!v.is(json::Kind::String))
    bad_wire(std::string("member '") + key + "' must be a number");
  errno = 0;
  char* end = nullptr;
  const double d = std::strtod(v.text.c_str(), &end);
  if (end == v.text.c_str() || *end != '\0')
    bad_wire(std::string("member '") + key + "' is not a number: '" + v.text + "'");
  return d;
}

Severity severity_from_name(const std::string& name) {
  if (name == "note") return Severity::Note;
  if (name == "warning") return Severity::Warning;
  if (name == "error") return Severity::Error;
  bad_wire("unknown diagnostic severity '" + name + "'");
}

JobState job_state_from_name(const std::string& name) {
  if (name == "done") return JobState::Done;
  if (name == "failed") return JobState::Failed;
  if (name == "cancelled") return JobState::Cancelled;
  if (name == "interrupted") return JobState::Interrupted;
  bad_wire("unknown job status '" + name + "'");
}

Diagnostic decode_diagnostic(const json::Value& obj) {
  if (!obj.is(json::Kind::Object)) bad_wire("diagnostic must be an object");
  Diagnostic d;
  d.severity = severity_from_name(get_string(obj, "severity"));
  d.code = get_string(obj, "code");
  d.loc.line = get_u64(obj, "line");
  d.loc.column = get_u64(obj, "column");
  d.message = get_string(obj, "message");
  d.hint = get_string_or(obj, "hint");
  d.token = get_string_or(obj, "token");
  return d;
}

std::vector<Diagnostic> decode_diagnostics(const json::Value& arr,
                                           const char* where) {
  if (!arr.is(json::Kind::Array))
    bad_wire(std::string("member '") + where + "' must be an array");
  std::vector<Diagnostic> out;
  out.reserve(arr.items.size());
  for (const json::Value& item : arr.items) out.push_back(decode_diagnostic(item));
  return out;
}

JobOutcome decode_job(const json::Value& obj) {
  if (!obj.is(json::Kind::Object)) bad_wire("result job must be an object");
  JobOutcome out;
  out.label = get_string(obj, "label");
  const json::Value& key = member(obj, "key");
  if (!key.is(json::Kind::Object)) bad_wire("job 'key' must be an object");
  out.key.model = Fingerprint::from_hex(get_string(key, "model"));
  out.key.request = Fingerprint::from_hex(get_string(key, "request"));
  out.state = job_state_from_name(get_string(obj, "status"));
  out.cache_hit = get_string_or(obj, "source", "simulated") == "cache";
  out.retries = static_cast<std::uint32_t>(get_u64(obj, "retries"));
  if (out.state == JobState::Failed) {
    const json::Value& failure = member(obj, "failure");
    if (!failure.is(json::Kind::Object)) bad_wire("job 'failure' must be an object");
    out.failure.kind = get_string(failure, "kind");
    out.failure.message = get_string(failure, "message");
    const json::Value& transient = member(failure, "transient");
    if (!transient.is(json::Kind::Bool)) bad_wire("'transient' must be a bool");
    out.failure.transient = transient.boolean;
    out.failure.attempts = static_cast<std::uint32_t>(get_u64(failure, "attempts"));
  }
  if (out.state == JobState::Done) {
    // The embedded report is the verbatim (compacted) "fmtree.result/v2"
    // document; re-serializing the parsed subtree reproduces its value bytes
    // exactly (json::write keeps raw number tokens), so decode_report's
    // content-hash check still guards end-to-end integrity.
    out.report = batch::decode_report(out.key, json::write(member(obj, "report")));
  }
  return out;
}

}  // namespace

std::string encode_accepted(const std::string& id, std::size_t jobs) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kSchema << "\",\"event\":\"accepted\",\"id\":\""
     << json::escape(id) << "\",\"jobs\":" << jobs << "}\n";
  return os.str();
}

std::string encode_progress(const obs::Progress& progress) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kSchema << "\",\"event\":\"progress\",\"phase\":\""
     << json::escape(progress.phase) << "\",\"done\":" << progress.done
     << ",\"total\":" << progress.total << ",\"rate\":\"" << hexfloat(progress.rate)
     << "\",\"eta_seconds\":\"" << hexfloat(progress.eta_seconds)
     << "\",\"ci_half_width\":\"" << hexfloat(progress.ci_half_width)
     << "\",\"ci_target\":\"" << hexfloat(progress.ci_target) << "\"}\n";
  return os.str();
}

std::string encode_result(const Response& response) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kSchema << "\",\"event\":\"result\",\"id\":\""
     << json::escape(response.id) << "\",\"stop_reason\":\""
     << smc::stop_reason_name(response.stop_reason)
     << "\",\"warnings\":" << diagnostics_json(response.warnings) << ",\"jobs\":[";
  for (std::size_t i = 0; i < response.jobs.size(); ++i) {
    const JobOutcome& job = response.jobs[i];
    if (i != 0) os << ',';
    os << "{\"label\":\"" << json::escape(job.label) << "\",\"key\":{\"model\":\""
       << job.key.model.hex() << "\",\"request\":\"" << job.key.request.hex()
       << "\"},\"status\":\"" << job_state_name(job.state) << "\",\"source\":\""
       << (job.cache_hit ? "cache" : "simulated")
       << "\",\"retries\":" << job.retries;
    if (job.state == JobState::Failed) {
      os << ",\"failure\":{\"kind\":\"" << json::escape(job.failure.kind)
         << "\",\"message\":\"" << json::escape(job.failure.message)
         << "\",\"transient\":" << (job.failure.transient ? "true" : "false")
         << ",\"attempts\":" << job.failure.attempts << '}';
    }
    if (job.state == JobState::Done)
      os << ",\"report\":" << compact_json(batch::encode_report(job.key, job.report));
    os << '}';
  }
  os << "]}\n";
  return os.str();
}

std::string encode_error(const RequestError& error) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kSchema << "\",\"event\":\"error\",\"code\":\""
     << json::escape(error.code()) << "\",\"message\":\"" << json::escape(error.what())
     << "\",\"diagnostics\":" << diagnostics_json(error.diagnostics()) << "}\n";
  return os.str();
}

Event decode_event(const std::string& line) try {
  const json::Value doc = json::parse(line);
  if (!doc.is(json::Kind::Object)) bad_wire("event is not a JSON object");
  if (get_string_or(doc, "schema") != kSchema)
    bad_wire("missing or unsupported schema tag (want fmtree.response/v1)");
  const std::string event = get_string(doc, "event");
  Event out;
  if (event == "accepted") {
    out.kind = EventKind::Accepted;
    out.id = get_string_or(doc, "id");
    out.jobs = get_u64(doc, "jobs");
  } else if (event == "progress") {
    out.kind = EventKind::Progress;
    const std::string phase = get_string(doc, "phase");
    for (const std::string_view known : kPhases)
      if (phase == known) out.progress.phase = known;
    out.progress.done = get_u64(doc, "done");
    out.progress.total = get_u64(doc, "total");
    out.progress.rate = get_double(doc, "rate");
    out.progress.eta_seconds = get_double(doc, "eta_seconds");
    out.progress.ci_half_width = get_double(doc, "ci_half_width");
    out.progress.ci_target = get_double(doc, "ci_target");
  } else if (event == "result") {
    out.kind = EventKind::Result;
    out.id = get_string_or(doc, "id");
    out.response.id = out.id;
    out.response.stop_reason =
        smc::stop_reason_from_name(get_string_or(doc, "stop_reason", "none"));
    out.response.warnings = decode_diagnostics(member(doc, "warnings"), "warnings");
    const json::Value& jobs = member(doc, "jobs");
    if (!jobs.is(json::Kind::Array)) bad_wire("member 'jobs' must be an array");
    out.response.jobs.reserve(jobs.items.size());
    for (const json::Value& job : jobs.items)
      out.response.jobs.push_back(decode_job(job));
  } else if (event == "error") {
    out.kind = EventKind::Error;
    out.error_code = get_string(doc, "code");
    out.diagnostics = decode_diagnostics(member(doc, "diagnostics"), "diagnostics");
    if (out.diagnostics.empty()) {
      Diagnostic d;
      d.code = out.error_code;
      d.message = get_string_or(doc, "message", "server reported an error");
      out.diagnostics.push_back(std::move(d));
    }
  } else {
    bad_wire("unknown event '" + event + "'");
  }
  return out;
} catch (const RequestError&) {
  throw;
} catch (const Error& e) {
  bad_wire(e.what());
}

std::string compact_json(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      out.push_back(c);
      if (escaped)
        escaped = false;
      else if (c == '\\')
        escaped = true;
      else if (c == '"')
        in_string = false;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    out.push_back(c);
    if (c == '"') in_string = true;
  }
  return out;
}

}  // namespace fmtree::serve
