// The versioned request schema "fmtree.request/v1": the canonical
// description of *an analysis* as data, shared by every entry point — the
// `fmtree serve` daemon parses it off the socket, `fmtree sweep
// --emit-request` prints it, `serve::Session` accepts it in-process, and
// `tools/validate_request.py` checks documents against the published JSON
// schema (tools/request_schema.json) in CI.
//
// A request names a model (inline .fmt text or a `ref` resolved against the
// server's model root), the result-relevant analysis settings, and an
// optional maintenance-policy grid. The settings fields are exactly the
// ones that participate in the cache fingerprint (batch/fingerprint.hpp):
// execution knobs — threads, lane width, telemetry — are deliberately not
// part of the schema, because by the bitwise-determinism contract they
// cannot change a result and are the *server's* business, not the client's.
//
// Doubles are accepted both as plain JSON numbers and as C99 hexfloat
// strings ("0x1.8p+1"); encode_request() always emits hexfloats, so an
// emitted request round-trips bit-exactly and hashes to the same CacheKey
// everywhere.
//
// Stable diagnostic codes (R-range, documented in DESIGN.md):
//   R110  malformed request JSON
//   R111  missing/unsupported schema tag
//   R112  invalid field (missing model, wrong type, unknown key, bad value)
//   R113  the model inside the request failed to parse/validate
//   R114  a policy script inside the request failed to compile/bind (the
//         diagnostics carry the script's own L1xx codes and locations)
//   R120  admission control rejected the request (queue full; retry later)
//   R121  client-side transport failure (connect/read/write on the socket)
//   R122  the server failed internally while executing the request
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "batch/sweep.hpp"
#include "fmt/fmtree.hpp"
#include "smc/kpi.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace fmtree::serve {

/// A structured request failure: an Error carrying one or more Diagnostics
/// with a stable R1xx code, so the CLI renders it through the same
/// --json-errors channel as every other failure.
class RequestError : public Error {
public:
  RequestError(std::string code, const std::string& message, std::string hint = {});
  RequestError(std::string code, std::vector<Diagnostic> diagnostics);

  const std::string& code() const noexcept { return code_; }
  const std::vector<Diagnostic>& diagnostics() const noexcept { return diagnostics_; }

private:
  std::string code_;
  std::vector<Diagnostic> diagnostics_;
};

/// R120: the daemon's bounded queue is full — the 429 of this protocol.
/// Nothing of the request was enqueued; the client may retry later.
class AdmissionError : public RequestError {
public:
  explicit AdmissionError(const std::string& message);
};

/// One parsed "fmtree.request/v1" document.
struct Request {
  std::string id;     ///< optional client tag, echoed in every response event
  int priority = 0;   ///< higher drains first when the queue is contended
  std::string model_text;  ///< inline .fmt source (exactly one of these two)
  std::string model_ref;   ///< model name resolved against the server root
  /// Result-relevant settings only; execution knobs keep their defaults and
  /// are overridden server-side (SessionConfig).
  smc::AnalysisSettings settings;
  /// Inspection-frequency grid (policy sweep); empty + !has_policy = a
  /// single analysis of the model as written.
  std::vector<double> frequencies;
  /// One scripted maintenance policy: inline DSL source or a `ref` resolved
  /// against the server's model root (exactly one of the two is set).
  struct PolicyScript {
    std::string text;  ///< inline script source
    std::string ref;   ///< script name under the model root
  };
  /// Scripted-policy candidates (policy.scripts); each becomes one job with
  /// the compiled policy attached, labeled by the script's policy name.
  std::vector<PolicyScript> scripts;
  bool has_policy = false;
  /// Corridor expansion (the `fleet` member): instantiate `joints` copies of
  /// the model with seeded parameter jitter and neighbour load-coupling
  /// (fleet::CorridorSpec semantics), one job per joint labeled
  /// fleet::joint_name(i). Only the result-relevant knobs appear here —
  /// render-side quantities (corridor spacing, crew capacity, worst-k) stay
  /// out of the schema for the same reason threads do. A fleet request may
  /// carry at most one policy script (applied to every joint) and no
  /// inspection-frequency grid.
  struct FleetSpec {
    std::uint32_t joints = 0;
    std::uint64_t seed = 0;
    double jitter = 0.1;
    double coupling = 0.0;
  };
  FleetSpec fleet;
  bool has_fleet = false;
};

/// Parses and validates a request document. Throws RequestError (R110/R111/
/// R112) — never anything else — on any malformed input.
Request parse_request(const std::string& text);

/// Canonical serialization: hexfloat doubles, stable member order. A parse
/// of the output yields a Request that hashes to the same cache keys.
std::string encode_request(const Request& request);

/// The request, resolved and expanded: the parsed model plus one SweepJob
/// per policy point (labels identical to the `fmtree sweep` CLI:
/// "no-inspection" / "<f>x-per-year", or "analysis" without a policy).
struct PreparedRequest {
  fmt::FaultMaintenanceTree model;
  std::vector<batch::SweepJob> jobs;
};

/// Resolves the model (R112 on a bad ref, R113 wrapping parse/validation
/// diagnostics) and expands the policy grid. `model_root` is the directory
/// `ref` names resolve in; inline models ignore it.
PreparedRequest prepare(const Request& request, const std::string& model_root);

}  // namespace fmtree::serve
