#include "serve/session.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "smc/kpi.hpp"

namespace fmtree::serve {

namespace detail {

/// One deduplicated unit of work. Shared (shared_ptr) between every ticket
/// watching it, the pending queue and the in-flight index; all fields except
/// `cancel` are guarded by the session mutex.
struct JobEntry {
  batch::SweepJob job;  ///< job.cancel points at `cancel` below
  smc::RunControl cancel;
  std::string key_id;
  int priority = 0;
  std::uint64_t seq = 0;
  int interested = 0;  ///< watchers; the last one to leave cancels the job
  bool done = false;
  JobOutcome outcome;
};

/// The serve.* counter ids, defined here so the header does not pull in
/// obs/metrics.hpp. `valid` is false when no registry is attached.
struct ServeMetrics {
  obs::CounterId requests, rejected, jobs, dedup_hits, cache_hits, cancelled;
  bool valid = false;

  static ServeMetrics from(obs::MetricsRegistry* registry) {
    ServeMetrics ids;
    if (registry == nullptr) return ids;
    ids.requests = registry->counter("serve.requests");
    ids.rejected = registry->counter("serve.rejected");
    ids.jobs = registry->counter("serve.jobs");
    ids.dedup_hits = registry->counter("serve.dedup_hits");
    ids.cache_hits = registry->counter("serve.cache_hits");
    ids.cancelled = registry->counter("serve.cancelled");
    ids.valid = true;
    return ids;
  }
};

}  // namespace detail

using detail::JobEntry;
using detail::ServeMetrics;

namespace {

JobOutcome outcome_from(const batch::JobResult& r) {
  JobOutcome o;
  o.label = r.label;
  o.key = r.key;
  o.cache_hit = r.cache_hit;
  o.retries = r.retries;
  if (r.completed) {
    o.state = JobState::Done;
    o.report = r.report;
  } else if (r.failed) {
    o.state = JobState::Failed;
    o.failure = r.failure;
  } else if (r.cancelled) {
    o.state = JobState::Cancelled;
  } else {
    o.state = JobState::Interrupted;
  }
  return o;
}

}  // namespace

const char* job_state_name(JobState s) noexcept {
  switch (s) {
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::Interrupted: return "interrupted";
  }
  return "?";
}

bool Response::all_done() const noexcept {
  for (const JobOutcome& j : jobs)
    if (j.state != JobState::Done) return false;
  return true;
}

std::uint64_t Response::count(JobState s) const noexcept {
  std::uint64_t n = 0;
  for (const JobOutcome& j : jobs)
    if (j.state == s) ++n;
  return n;
}

// ---- Ticket -----------------------------------------------------------------

Ticket::Ticket(Ticket&& other) noexcept
    : session_(other.session_),
      id_(std::move(other.id_)),
      entries_(std::move(other.entries_)),
      detached_(other.detached_) {
  other.session_ = nullptr;
  other.detached_ = true;
}

Ticket& Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    cancel();
    session_ = other.session_;
    id_ = std::move(other.id_);
    entries_ = std::move(other.entries_);
    detached_ = other.detached_;
    other.session_ = nullptr;
    other.detached_ = true;
  }
  return *this;
}

Ticket::~Ticket() { cancel(); }

bool Ticket::done() const {
  if (session_ == nullptr) return true;
  std::lock_guard lock(session_->mutex_);
  for (const auto& e : entries_)
    if (!e->done) return false;
  return true;
}

void Ticket::wait() {
  if (session_ == nullptr) return;
  std::unique_lock lock(session_->mutex_);
  session_->done_cv_.wait(lock, [&] {
    for (const auto& e : entries_)
      if (!e->done) return false;
    return true;
  });
}

bool Ticket::wait_for(double seconds) {
  if (session_ == nullptr) return true;
  std::unique_lock lock(session_->mutex_);
  return session_->done_cv_.wait_for(
      lock, std::chrono::duration<double>(seconds), [&] {
        for (const auto& e : entries_)
          if (!e->done) return false;
        return true;
      });
}

Response Ticket::take() {
  wait();
  Response response;
  response.id = id_;
  if (session_ == nullptr) return response;
  std::lock_guard lock(session_->mutex_);
  response.jobs.reserve(entries_.size());
  for (const auto& e : entries_) response.jobs.push_back(e->outcome);
  response.warnings = std::move(session_->warnings_);
  session_->warnings_.clear();
  response.stop_reason = session_->last_stop_reason_;
  return response;
}

void Ticket::cancel() {
  if (session_ == nullptr || detached_) return;
  detached_ = true;
  session_->release_interest(entries_);
}

// ---- Session ----------------------------------------------------------------

Session::Session(SessionConfig config) : config_(std::move(config)) {
  if (config_.cache != nullptr) {
    cache_ = config_.cache;
  } else {
    owned_cache_ = config_.cache_dir.empty()
                       ? std::make_unique<batch::ResultCache>()
                       : std::make_unique<batch::ResultCache>(config_.cache_dir);
    cache_ = owned_cache_.get();
  }
  serve_metrics_ = std::make_unique<ServeMetrics>(
      ServeMetrics::from(config_.telemetry.metrics));
  progress_reporter_ = std::make_unique<obs::ProgressReporter>(
      [this](const obs::Progress& p) {
        {
          std::lock_guard lock(progress_mutex_);
          progress_snapshot_.progress = p;
          ++progress_snapshot_.generation;
        }
        // Forward to the server's own reporter (CLI --progress) if present;
        // it throttles again on its own interval.
        if (config_.telemetry.progress != nullptr)
          config_.telemetry.progress->update(p);
      },
      /*min_interval_seconds=*/0.2);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

Session::~Session() { drain(); }

Session::ProgressSnapshot Session::progress() const {
  std::lock_guard lock(progress_mutex_);
  return progress_snapshot_;
}

Ticket Session::submit(const Request& request) {
  PreparedRequest prepared = prepare(request, config_.model_root);
  return submit_jobs(std::move(prepared.jobs), request.priority, request.id);
}

Ticket Session::submit_jobs(std::vector<batch::SweepJob> jobs, int priority,
                            std::string id) {
  if (jobs.empty())
    throw RequestError("R112", "request expands to no jobs");
  for (const batch::SweepJob& job : jobs) {
    try {
      smc::validate_settings(job.settings);
    } catch (const Error& e) {
      throw RequestError("R112", std::string("invalid settings: ") + e.what());
    }
  }
  std::vector<batch::CacheKey> keys;
  keys.reserve(jobs.size());
  for (const batch::SweepJob& job : jobs)
    keys.push_back(batch::kpi_cache_key(job.model, job.settings));

  std::unique_lock lock(mutex_);
  if (stopping_)
    throw RequestError("R122", "service is draining and accepts no new requests");
  const ServeMetrics& ids = *serve_metrics_;
  obs::MetricsRegistry* metrics = config_.telemetry.metrics;
  if (ids.valid) metrics->add(ids.requests);

  // Resolution pass: classify every job before touching any state, so an
  // admission rejection leaves the session exactly as it found it.
  enum class Kind : std::uint8_t { Hit, Attach, New };
  std::vector<Kind> kinds(jobs.size(), Kind::New);
  std::vector<std::optional<smc::KpiReport>> hits(jobs.size());
  std::size_t new_jobs = 0;
  std::map<std::string, std::size_t> new_in_request;  // dedup inside one request
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string key_id = keys[i].id();
    if ((hits[i] = cache_->get(keys[i]))) {
      kinds[i] = Kind::Hit;
    } else if (inflight_.count(key_id) != 0 || new_in_request.count(key_id) != 0) {
      kinds[i] = Kind::Attach;
    } else {
      new_in_request.emplace(key_id, i);
      ++new_jobs;
    }
  }
  if (outstanding_ + new_jobs > config_.queue_limit) {
    if (ids.valid) metrics->add(ids.rejected);
    throw AdmissionError(
        "request needs " + std::to_string(new_jobs) + " queue slot(s) but only " +
        std::to_string(config_.queue_limit - outstanding_) + " of " +
        std::to_string(config_.queue_limit) + " are free");
  }

  // Commit pass: the request is now guaranteed to be accepted whole.
  Ticket ticket;
  ticket.session_ = this;
  ticket.id_ = std::move(id);
  ticket.entries_.reserve(jobs.size());
  std::map<std::string, std::shared_ptr<JobEntry>> created;
  bool queued_any = false;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const std::string key_id = keys[i].id();
    if (kinds[i] == Kind::Hit) {
      auto entry = std::make_shared<JobEntry>();
      entry->key_id = key_id;
      entry->done = true;
      entry->outcome.label = jobs[i].label;
      entry->outcome.key = keys[i];
      entry->outcome.state = JobState::Done;
      entry->outcome.cache_hit = true;
      entry->outcome.report = *std::move(hits[i]);
      ticket.entries_.push_back(std::move(entry));
      if (ids.valid) metrics->add(ids.cache_hits);
      continue;
    }
    if (kinds[i] == Kind::Attach) {
      auto it = inflight_.find(key_id);
      std::shared_ptr<JobEntry> entry =
          it != inflight_.end() ? it->second : created.at(key_id);
      ++entry->interested;
      entry->priority = std::max(entry->priority, priority);
      ticket.entries_.push_back(std::move(entry));
      if (ids.valid) metrics->add(ids.dedup_hits);
      continue;
    }
    auto entry = std::make_shared<JobEntry>();
    entry->job = std::move(jobs[i]);
    entry->job.cancel = &entry->cancel;
    entry->key_id = key_id;
    entry->priority = priority;
    entry->seq = next_seq_++;
    entry->interested = 1;
    entry->outcome.label = entry->job.label;
    entry->outcome.key = keys[i];
    inflight_.emplace(key_id, entry);
    created.emplace(key_id, entry);
    pending_.push_back(entry);
    ++outstanding_;
    queued_any = true;
    if (ids.valid) metrics->add(ids.jobs);
    ticket.entries_.push_back(std::move(entry));
  }
  if (queued_any) work_cv_.notify_one();
  return ticket;
}

void Session::release_interest(
    const std::vector<std::shared_ptr<JobEntry>>& entries) {
  std::lock_guard lock(mutex_);
  const ServeMetrics& ids = *serve_metrics_;
  for (const auto& entry : entries) {
    if (entry->done) continue;
    if (--entry->interested > 0) continue;
    // Last watcher gone: fire the per-job cancel. A job still waiting in
    // pending_ resolves immediately (its queue slot frees up now); a running
    // one parks at the next trajectory boundary and resolves after the plan.
    entry->cancel.request_stop();
    if (ids.valid) config_.telemetry.metrics->add(ids.cancelled);
    const auto it = std::find(pending_.begin(), pending_.end(), entry);
    if (it != pending_.end()) {
      pending_.erase(it);
      entry->done = true;
      entry->outcome.state = JobState::Cancelled;
      inflight_.erase(entry->key_id);
      --outstanding_;
    }
  }
  done_cv_.notify_all();
}

void Session::resolve_entry_locked(JobEntry& entry, JobOutcome outcome) {
  entry.done = true;
  entry.outcome = std::move(outcome);
  inflight_.erase(entry.key_id);
  --outstanding_;
}

void Session::dispatcher_loop() {
  for (;;) {
    std::vector<std::shared_ptr<JobEntry>> cycle;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // drain() resolves whatever is still pending
      cycle = std::move(pending_);
      pending_.clear();
      // Priority order: highest first, FIFO within a priority. The sort is
      // scheduling-only — results are bit-identical in any order.
      std::stable_sort(cycle.begin(), cycle.end(),
                       [](const auto& a, const auto& b) {
                         return a->priority != b->priority
                                    ? a->priority > b->priority
                                    : a->seq < b->seq;
                       });
    }
    batch::SweepPlan plan;
    plan.threads = config_.threads;
    plan.chunk = config_.chunk;
    plan.max_retries = config_.max_retries;
    plan.stall_timeout_s = config_.stall_timeout_s;
    plan.control = &drain_control_;
    plan.jobs.reserve(cycle.size());
    for (const auto& entry : cycle) plan.jobs.push_back(entry->job);

    obs::Telemetry telemetry = config_.telemetry;
    telemetry.progress = progress_reporter_.get();
    const batch::SweepOutcome outcome =
        batch::run_sweep(plan, cache_, telemetry);

    std::lock_guard lock(mutex_);
    for (const Diagnostic& d : outcome.warnings) warnings_.push_back(d);
    if (outcome.stop_reason != smc::StopReason::None)
      last_stop_reason_ = outcome.stop_reason;
    for (std::size_t i = 0; i < cycle.size(); ++i)
      resolve_entry_locked(*cycle[i], outcome_from(outcome.results[i]));
    done_cv_.notify_all();
  }
}

void Session::drain() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    drain_control_.request_stop();
    // Unclaimed jobs resolve now; the dispatcher's in-flight plan stops at
    // the next trajectory boundary and resolves its own entries.
    if (!pending_.empty()) last_stop_reason_ = smc::StopReason::Interrupted;
    for (const auto& entry : pending_) {
      entry->done = true;
      entry->outcome.state = JobState::Interrupted;
      inflight_.erase(entry->key_id);
      --outstanding_;
    }
    pending_.clear();
    work_cv_.notify_all();
    done_cv_.notify_all();
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace fmtree::serve
