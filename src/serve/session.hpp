// serve::Session — the analysis service, usable in-process or behind the
// `fmtree serve` socket daemon (serve/server.hpp). One Session owns one
// ResultCache and one dispatcher that drains submitted jobs through the
// shared work-stealing pool (batch::run_sweep), so many concurrent callers
// share one hot cache and one saturated trajectory pool.
//
// Submission semantics, in resolution order per job:
//   1. cache hit   — resolved immediately, no queue slot consumed;
//   2. in-flight   — an identical job (same CacheKey) is already queued or
//     running: the caller attaches to it (dedup), the job runs once, every
//     attached ticket receives the same bit-exact report, and the job's
//     effective priority is the max over its watchers;
//   3. admission   — a genuinely new job needs a queue slot; when the count
//     of outstanding jobs would exceed SessionConfig::queue_limit the whole
//     request is rejected with AdmissionError (R120) and *nothing* of it is
//     enqueued (all-or-nothing, so a half-admitted sweep cannot deadlock a
//     client);
//   4. enqueued    — the dispatcher picks jobs up in (priority desc,
//     submission order asc) batches and runs them as one SweepPlan.
//
// Cancellation: Ticket::cancel() detaches one caller; when the last watcher
// of a job detaches, the job's per-job RunControl (SweepJob::cancel) fires
// and the pool abandons it at the next trajectory boundary. drain() — the
// SIGTERM path — stops the dispatcher, cancels everything still pending,
// and resolves all tickets; completed jobs keep their cached results, so a
// restarted daemon replays them bit-identically.
//
// Bitwise contract: a job's report is bit-identical to standalone
// smc::analyze / `fmtree sweep` for the same model and settings — the
// Session only schedules; it never touches result bits.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "batch/result_cache.hpp"
#include "batch/sweep.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry.hpp"
#include "serve/request.hpp"
#include "smc/run_control.hpp"

namespace fmtree::serve {

struct SessionConfig {
  unsigned threads = 0;          ///< pool width; 0 = hardware concurrency
  std::size_t queue_limit = 64;  ///< max outstanding (queued + running) jobs
  std::string cache_dir;         ///< disk cache tier; empty = memory-only
  std::string model_root = "models";  ///< directory for model "ref" lookups
  std::uint32_t max_retries = 2;      ///< SweepPlan::max_retries
  double stall_timeout_s = 0.0;       ///< SweepPlan::stall_timeout_s
  std::uint64_t chunk = 2048;         ///< SweepPlan::chunk
  /// Borrowed cache (e.g. fmtree::Analysis sharing its own); nullptr = the
  /// Session owns one built from cache_dir.
  batch::ResultCache* cache = nullptr;
  /// Server-owned sinks. serve.* counters are registered here; run_sweep
  /// adds its batch.* counters. Progress flows through the Session's own
  /// snapshot (progress()) *and* any reporter installed here.
  obs::Telemetry telemetry;
};

/// Final status of one job of a request.
enum class JobState : std::uint8_t {
  Done,         ///< report is valid (simulated or cache)
  Failed,       ///< permanent failure; `failure` says why
  Cancelled,    ///< every watcher hung up before completion
  Interrupted,  ///< the service stopped (drain/deadline) before completion
};

const char* job_state_name(JobState s) noexcept;

struct JobOutcome {
  std::string label;
  batch::CacheKey key;
  JobState state = JobState::Interrupted;
  bool cache_hit = false;
  std::uint32_t retries = 0;
  batch::JobFailure failure;  ///< valid when state == Failed
  smc::KpiReport report;      ///< valid when state == Done
};

/// Everything a completed request resolves to, in job submission order.
struct Response {
  std::string id;  ///< echo of Request::id
  std::vector<JobOutcome> jobs;
  std::vector<Diagnostic> warnings;
  /// Why the service stopped early, when any job is Interrupted.
  smc::StopReason stop_reason = smc::StopReason::None;

  bool all_done() const noexcept;
  std::uint64_t count(JobState s) const noexcept;
};

namespace detail {
struct JobEntry;
struct ServeMetrics;
}

/// A caller's handle on one submitted request. Move-only; destroying an
/// unresolved ticket cancels the caller's interest (like cancel()).
class Ticket {
public:
  Ticket() = default;
  Ticket(Ticket&&) noexcept;
  Ticket& operator=(Ticket&&) noexcept;
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;
  ~Ticket();

  /// Number of jobs the request resolved to (after policy expansion).
  std::size_t jobs() const noexcept { return entries_.size(); }
  /// True once every job of the request is resolved.
  bool done() const;
  /// Blocks until done.
  void wait();
  /// Blocks up to `seconds`; returns done().
  bool wait_for(double seconds);
  /// Waits, then assembles the response (including cache warnings drained
  /// from the service). Call once.
  Response take();
  /// Detaches this caller. Jobs whose last watcher detaches are cancelled
  /// at the next trajectory boundary; jobs shared with other callers keep
  /// running. Idempotent.
  void cancel();

private:
  friend class Session;
  class Session* session_ = nullptr;
  std::string id_;
  std::vector<std::shared_ptr<detail::JobEntry>> entries_;
  bool detached_ = false;
};

class Session {
public:
  explicit Session(SessionConfig config);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();  ///< drains

  /// Parses nothing: the request's model is resolved (prepare()) and its
  /// jobs submitted atomically. Throws RequestError (R112/R113) and
  /// AdmissionError (R120).
  Ticket submit(const Request& request);

  /// Pre-built jobs (the in-process fast path used by fmtree::Analysis and
  /// the CLI). Settings are validated (R112); admission is all-or-nothing.
  Ticket submit_jobs(std::vector<batch::SweepJob> jobs, int priority = 0,
                     std::string id = {});

  /// Stops accepting work, cancels pending jobs, resolves every ticket and
  /// joins the dispatcher. Idempotent; the destructor calls it.
  void drain();

  /// The service cache (owned or borrowed per SessionConfig::cache).
  batch::ResultCache& cache() noexcept { return *cache_; }

  /// Latest pool progress (phase "sweep"); generation increments with every
  /// update so pollers can cheaply detect changes.
  struct ProgressSnapshot {
    obs::Progress progress;
    std::uint64_t generation = 0;
  };
  ProgressSnapshot progress() const;

  const SessionConfig& config() const noexcept { return config_; }

private:
  friend class Ticket;

  void dispatcher_loop();
  void resolve_entry_locked(detail::JobEntry& entry, JobOutcome outcome);
  void release_interest(const std::vector<std::shared_ptr<detail::JobEntry>>& entries);

  SessionConfig config_;
  std::unique_ptr<batch::ResultCache> owned_cache_;
  batch::ResultCache* cache_ = nullptr;
  std::unique_ptr<detail::ServeMetrics> serve_metrics_;  ///< counter ids

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes the dispatcher
  std::condition_variable done_cv_;   ///< wakes waiting tickets
  std::vector<std::shared_ptr<detail::JobEntry>> pending_;
  std::map<std::string, std::shared_ptr<detail::JobEntry>> inflight_;
  std::size_t outstanding_ = 0;  ///< queued + running (admission accounting)
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::vector<Diagnostic> warnings_;  ///< drained into responses
  smc::StopReason last_stop_reason_ = smc::StopReason::None;

  smc::RunControl drain_control_;
  std::thread dispatcher_;

  mutable std::mutex progress_mutex_;
  ProgressSnapshot progress_snapshot_;
  std::unique_ptr<obs::ProgressReporter> progress_reporter_;
};

}  // namespace fmtree::serve
