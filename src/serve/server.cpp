#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "serve/protocol.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace fmtree::serve {

namespace detail {
struct Connection {
  std::thread thread;
  std::atomic<bool> done{false};
};
}  // namespace detail

namespace {

/// Closes the listener on every exit path of run().
struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

/// Writes the whole buffer; false on any transport failure (the caller drops
/// the connection). MSG_NOSIGNAL keeps a dead peer from raising SIGPIPE.
/// The serve.write fault site models exactly that failure.
bool write_all(int fd, const std::string& data) {
  try {
    if (fault::fault_point("serve.write")) return false;
  } catch (const fault::InjectedFault&) {
    return false;
  }
  const char* p = data.data();
  std::size_t n = data.size();
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

int poll_ms(double seconds) {
  const int ms = static_cast<int>(seconds * 1000.0);
  return ms > 0 ? ms : 100;
}

}  // namespace

Server::Server(Session& session, ServerConfig config)
    : session_(session), config_(std::move(config)) {}

Server::~Server() { reap(/*all=*/true); }

std::string Server::read_request(int fd) {
  // The client frames its request by shutting down its write side; we read
  // to EOF, polling so a SIGTERM drain is never stuck behind a silent peer.
  std::string text;
  char buf[4096];
  for (;;) {
    if (config_.stop != nullptr &&
        config_.stop->should_stop(0) != smc::StopReason::None)
      throw RequestError("R122", "service is draining; request abandoned",
                         "retry against a running daemon");
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, poll_ms(config_.poll_interval_s));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw RequestError("R122", std::string("poll failed reading request: ") +
                                     std::strerror(errno));
    }
    if (ready == 0) continue;
    const ssize_t r = ::recv(fd, buf, sizeof buf, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw RequestError("R122", std::string("failed to read request: ") +
                                     std::strerror(errno));
    }
    if (r == 0) return text;
    text.append(buf, static_cast<std::size_t>(r));
    if (text.size() > config_.max_request_bytes)
      throw RequestError("R110",
                         "request document exceeds " +
                             std::to_string(config_.max_request_bytes) + " bytes",
                         "send the model by ref instead of inline");
  }
}

void Server::handle_connection(int fd) {
  std::optional<Ticket> ticket;
  try {
    const std::string text = read_request(fd);
    const Request request = parse_request(text);
    ticket.emplace(session_.submit(request));
    if (!write_all(fd, encode_accepted(request.id, ticket->jobs()))) {
      ticket->cancel();
      ::close(fd);
      return;
    }
    std::uint64_t last_generation = session_.progress().generation;
    while (!ticket->wait_for(config_.poll_interval_s)) {
      const Session::ProgressSnapshot snap = session_.progress();
      if (snap.generation == last_generation) continue;
      last_generation = snap.generation;
      if (!write_all(fd, encode_progress(snap.progress))) {
        // The peer is gone: detach. Jobs other connections still watch keep
        // running; sole-watcher jobs are cancelled at the next boundary.
        ticket->cancel();
        ::close(fd);
        return;
      }
    }
    write_all(fd, encode_result(ticket->take()));
  } catch (const RequestError& e) {
    write_all(fd, encode_error(e));
  } catch (const Error& e) {
    write_all(fd, encode_error(RequestError("R122", e.what())));
  } catch (const std::exception& e) {
    write_all(fd, encode_error(RequestError(
                      "R122", std::string("internal server error: ") + e.what())));
  }
  ::close(fd);
}

void Server::reap(bool all) {
  std::erase_if(connections_, [all](const std::unique_ptr<detail::Connection>& c) {
    if (!all && !c->done.load(std::memory_order_acquire)) return false;
    if (c->thread.joinable()) c->thread.join();
    return true;
  });
}

void Server::run() {
  FdCloser listener{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (listener.fd < 0)
    throw IoError(std::string("cannot create socket: ") + std::strerror(errno));

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path))
    throw IoError("socket path must be 1.." +
                  std::to_string(sizeof(addr.sun_path) - 1) + " characters: '" +
                  config_.socket_path + "'");
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  ::unlink(config_.socket_path.c_str());  // a stale socket from a dead daemon
  if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0)
    throw IoError("cannot bind '" + config_.socket_path +
                  "': " + std::strerror(errno));
  if (::listen(listener.fd, 16) < 0)
    throw IoError("cannot listen on '" + config_.socket_path +
                  "': " + std::strerror(errno));

  while (config_.stop == nullptr ||
         config_.stop->should_stop(0) == smc::StopReason::None) {
    pollfd pfd{listener.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, poll_ms(config_.poll_interval_s));
    reap(/*all=*/false);
    if (ready < 0 && errno != EINTR)
      throw IoError(std::string("poll failed on listener: ") + std::strerror(errno));
    if (ready <= 0) continue;
    const int fd = ::accept(listener.fd, nullptr, nullptr);
    if (fd < 0) continue;
    try {
      if (fault::fault_point("serve.accept")) {
        ::close(fd);
        continue;
      }
    } catch (const fault::InjectedFault&) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<detail::Connection>();
    detail::Connection* raw = conn.get();
    conn->thread = std::thread([this, fd, raw] {
      handle_connection(fd);
      raw->done.store(true, std::memory_order_release);
    });
    connections_.push_back(std::move(conn));
  }

  // SIGTERM drain: stop accepting, resolve every in-flight ticket (completed
  // jobs are already cached), let each connection write its final event.
  session_.drain();
  reap(/*all=*/true);
  ::unlink(config_.socket_path.c_str());
}

}  // namespace fmtree::serve
