#include "serve/request.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "fleet/fleet.hpp"
#include "fmt/parser.hpp"
#include "lang/runtime.hpp"
#include "util/json.hpp"

namespace fmtree::serve {

namespace {

constexpr const char* kSchema = "fmtree.request/v1";

Diagnostic make_diagnostic(std::string code, const std::string& message,
                           std::string hint) {
  Diagnostic d;
  d.severity = Severity::Error;
  d.code = std::move(code);
  d.message = message;
  d.hint = std::move(hint);
  return d;
}

[[noreturn]] void invalid(const std::string& message, std::string hint = {}) {
  throw RequestError("R112", message, std::move(hint));
}

/// Schema doubles: a JSON number, or a string holding a C99 hexfloat (or
/// any strtod-parseable spelling). Hexfloat strings are the canonical form
/// because they round-trip bit-exactly into the cache fingerprint.
double parse_number(const json::Value& v, const std::string& what) {
  if (v.is(json::Kind::Number)) {
    try {
      return v.as_double();
    } catch (const Error& e) {
      invalid("request field '" + what + "': " + e.what());
    }
  }
  if (v.is(json::Kind::String)) {
    const char* begin = v.text.c_str();
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin || *end != '\0')
      invalid("request field '" + what + "' is not a number: '" + v.text + "'",
              "use a JSON number or a C99 hexfloat string like \"0x1.8p+1\"");
    return value;
  }
  invalid("request field '" + what + "' must be a number or hexfloat string");
}

std::uint64_t parse_count(const json::Value& v, const std::string& what) {
  const double d = parse_number(v, what);
  if (!(d >= 0) || d != std::floor(d))
    invalid("request field '" + what + "' must be a nonnegative integer");
  return static_cast<std::uint64_t>(d);
}

/// C99 hexfloat form, same helper discipline as the result cache: exact
/// bits, locale-independent, strtod-parseable.
std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

void reject_unknown_members(const json::Value& object, const char* where,
                            std::initializer_list<const char*> known) {
  for (const auto& [key, value] : object.members) {
    bool ok = false;
    for (const char* k : known) ok = ok || key == k;
    if (!ok)
      invalid(std::string("unknown request field '") + where + "." + key + "'",
              "the fmtree.request/v1 schema rejects unrecognized fields");
  }
}

}  // namespace

RequestError::RequestError(std::string code, const std::string& message,
                           std::string hint)
    : Error(message), code_(std::move(code)) {
  diagnostics_.push_back(make_diagnostic(code_, message, std::move(hint)));
}

RequestError::RequestError(std::string code, std::vector<Diagnostic> diagnostics)
    : Error(diagnostics.empty() ? "invalid request" : diagnostics.front().message),
      code_(std::move(code)),
      diagnostics_(std::move(diagnostics)) {}

AdmissionError::AdmissionError(const std::string& message)
    : RequestError("R120", message,
                   "the daemon's job queue is full; retry after a drain") {}

Request parse_request(const std::string& text) {
  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const Error& e) {
    throw RequestError("R110", std::string("malformed request JSON: ") + e.what());
  }
  if (!doc.is(json::Kind::Object))
    throw RequestError("R110", "request must be a JSON object");
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is(json::Kind::String))
    throw RequestError("R111", "request has no schema tag",
                       std::string("expected \"schema\": \"") + kSchema + "\"");
  if (schema->text != kSchema)
    throw RequestError("R111", "unsupported request schema '" + schema->text + "'",
                       std::string("this server speaks ") + kSchema);
  reject_unknown_members(
      doc, "request",
      {"schema", "id", "priority", "model", "settings", "fleet", "policy"});

  Request req;
  if (const json::Value* id = doc.find("id")) {
    if (!id->is(json::Kind::String)) invalid("request field 'id' must be a string");
    req.id = id->text;
  }
  if (const json::Value* prio = doc.find("priority")) {
    const double p = parse_number(*prio, "priority");
    if (p != std::floor(p) || p < -1000 || p > 1000)
      invalid("request field 'priority' must be an integer in [-1000, 1000]");
    req.priority = static_cast<int>(p);
  }

  const json::Value* model = doc.find("model");
  if (model == nullptr || !model->is(json::Kind::Object))
    invalid("request needs a 'model' object",
            "either {\"inline\": \"<.fmt source>\"} or {\"ref\": \"<name>\"}");
  reject_unknown_members(*model, "model", {"inline", "ref"});
  const json::Value* inline_text = model->find("inline");
  const json::Value* ref = model->find("ref");
  if ((inline_text != nullptr) == (ref != nullptr))
    invalid("request 'model' needs exactly one of 'inline' or 'ref'");
  if (inline_text != nullptr) {
    if (!inline_text->is(json::Kind::String))
      invalid("request field 'model.inline' must be a string of .fmt source");
    req.model_text = inline_text->text;
  } else {
    if (!ref->is(json::Kind::String) || ref->text.empty())
      invalid("request field 'model.ref' must be a nonempty string");
    req.model_ref = ref->text;
  }

  if (const json::Value* settings = doc.find("settings")) {
    if (!settings->is(json::Kind::Object))
      invalid("request field 'settings' must be an object");
    reject_unknown_members(*settings, "settings",
                           {"horizon", "trajectories", "seed", "confidence",
                            "discount_rate", "target_relative_error", "engine"});
    if (const json::Value* v = settings->find("horizon"))
      req.settings.horizon = parse_number(*v, "settings.horizon");
    if (const json::Value* v = settings->find("trajectories"))
      req.settings.trajectories = parse_count(*v, "settings.trajectories");
    if (const json::Value* v = settings->find("seed"))
      req.settings.seed = parse_count(*v, "settings.seed");
    if (const json::Value* v = settings->find("confidence"))
      req.settings.confidence = parse_number(*v, "settings.confidence");
    if (const json::Value* v = settings->find("discount_rate"))
      req.settings.discount_rate = parse_number(*v, "settings.discount_rate");
    if (const json::Value* v = settings->find("target_relative_error"))
      req.settings.target_relative_error =
          parse_number(*v, "settings.target_relative_error");
    if (const json::Value* v = settings->find("engine")) {
      if (!v->is(json::Kind::String))
        invalid("request field 'settings.engine' must be a string");
      if (v->text == "default") req.settings.engine = Engine::Default;
      else if (v->text == "scalar") req.settings.engine = Engine::Scalar;
      else if (v->text == "batch") req.settings.engine = Engine::Batch;
      else
        invalid("unknown engine '" + v->text + "'",
                "one of \"default\", \"scalar\", \"batch\"");
    }
  }
  if (!(req.settings.horizon > 0)) invalid("settings.horizon must be positive");
  if (req.settings.trajectories == 0)
    invalid("settings.trajectories must be positive");
  if (!(req.settings.confidence > 0 && req.settings.confidence < 1))
    invalid("settings.confidence must lie in (0,1)");

  if (const json::Value* fleet = doc.find("fleet")) {
    if (!fleet->is(json::Kind::Object))
      invalid("request field 'fleet' must be an object");
    reject_unknown_members(*fleet, "fleet",
                           {"joints", "seed", "jitter", "coupling"});
    const json::Value* joints = fleet->find("joints");
    if (joints == nullptr)
      invalid("request field 'fleet' needs 'joints'");
    const std::uint64_t n = parse_count(*joints, "fleet.joints");
    if (n < 1 || n > 100000)
      invalid("request field 'fleet.joints' must lie in [1, 100000]");
    req.fleet.joints = static_cast<std::uint32_t>(n);
    if (const json::Value* v = fleet->find("seed"))
      req.fleet.seed = parse_count(*v, "fleet.seed");
    if (const json::Value* v = fleet->find("jitter")) {
      req.fleet.jitter = parse_number(*v, "fleet.jitter");
      if (!(req.fleet.jitter >= 0) || !std::isfinite(req.fleet.jitter))
        invalid("request field 'fleet.jitter' must be finite and >= 0");
    }
    if (const json::Value* v = fleet->find("coupling")) {
      req.fleet.coupling = parse_number(*v, "fleet.coupling");
      if (!(req.fleet.coupling >= 0) || !std::isfinite(req.fleet.coupling))
        invalid("request field 'fleet.coupling' must be finite and >= 0");
    }
    req.has_fleet = true;
  }

  if (const json::Value* policy = doc.find("policy")) {
    if (!policy->is(json::Kind::Object))
      invalid("request field 'policy' must be an object");
    reject_unknown_members(*policy, "policy", {"frequencies", "scripts"});
    const json::Value* freqs = policy->find("frequencies");
    const json::Value* scripts = policy->find("scripts");
    if (freqs == nullptr && scripts == nullptr)
      invalid("request field 'policy' needs 'frequencies' and/or 'scripts'");
    if (freqs != nullptr) {
      if (!freqs->is(json::Kind::Array) || freqs->items.empty())
        invalid("request field 'policy.frequencies' must be a nonempty array");
      for (const json::Value& item : freqs->items) {
        const double f = parse_number(item, "policy.frequencies[]");
        if (!(f >= 0) || !std::isfinite(f))
          invalid("policy frequencies must be finite and >= 0");
        req.frequencies.push_back(f);
      }
    }
    if (scripts != nullptr) {
      if (!scripts->is(json::Kind::Array) || scripts->items.empty())
        invalid("request field 'policy.scripts' must be a nonempty array");
      for (const json::Value& item : scripts->items) {
        if (!item.is(json::Kind::Object))
          invalid("request field 'policy.scripts[]' must be an object",
                  "either {\"inline\": \"<script>\"} or {\"ref\": \"<name>\"}");
        reject_unknown_members(item, "policy.scripts[]", {"inline", "ref"});
        const json::Value* inline_src = item.find("inline");
        const json::Value* script_ref = item.find("ref");
        if ((inline_src != nullptr) == (script_ref != nullptr))
          invalid(
              "request 'policy.scripts[]' needs exactly one of 'inline' or "
              "'ref'");
        Request::PolicyScript script;
        if (inline_src != nullptr) {
          if (!inline_src->is(json::Kind::String) || inline_src->text.empty())
            invalid(
                "request field 'policy.scripts[].inline' must be a nonempty "
                "string of policy source");
          script.text = inline_src->text;
        } else {
          if (!script_ref->is(json::Kind::String) || script_ref->text.empty())
            invalid(
                "request field 'policy.scripts[].ref' must be a nonempty "
                "string");
          script.ref = script_ref->text;
        }
        req.scripts.push_back(std::move(script));
      }
    }
    req.has_policy = true;
  }
  if (req.has_fleet && !req.frequencies.empty())
    invalid("a fleet request cannot also sweep 'policy.frequencies'",
            "bake the inspection schedule into the model (or use one policy "
            "script); every joint runs the same policy");
  if (req.has_fleet && req.scripts.size() > 1)
    invalid("a fleet request accepts at most one policy script",
            "the script is applied to every joint of the corridor");
  return req;
}

std::string encode_request(const Request& request) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kSchema << "\",\n";
  if (!request.id.empty())
    os << "  \"id\": \"" << json::escape(request.id) << "\",\n";
  if (request.priority != 0) os << "  \"priority\": " << request.priority << ",\n";
  os << "  \"model\": {";
  if (!request.model_ref.empty()) {
    os << "\"ref\": \"" << json::escape(request.model_ref) << "\"";
  } else {
    os << "\"inline\": \"" << json::escape(request.model_text) << "\"";
  }
  os << "},\n"
     << "  \"settings\": {\n"
     << "    \"horizon\": \"" << hexfloat(request.settings.horizon) << "\",\n"
     << "    \"trajectories\": " << request.settings.trajectories << ",\n"
     << "    \"seed\": " << request.settings.seed << ",\n"
     << "    \"confidence\": \"" << hexfloat(request.settings.confidence) << "\",\n"
     << "    \"discount_rate\": \"" << hexfloat(request.settings.discount_rate)
     << "\",\n"
     << "    \"target_relative_error\": \""
     << hexfloat(request.settings.target_relative_error) << "\",\n"
     << "    \"engine\": \""
     << (request.settings.engine == Engine::Default
             ? "default"
             : engine_name(request.settings.engine))
     << "\"\n"
     << "  }";
  if (request.has_fleet) {
    os << ",\n  \"fleet\": {\"joints\": " << request.fleet.joints
       << ", \"seed\": " << request.fleet.seed << ", \"jitter\": \""
       << hexfloat(request.fleet.jitter) << "\", \"coupling\": \""
       << hexfloat(request.fleet.coupling) << "\"}";
  }
  if (request.has_policy) {
    os << ",\n  \"policy\": {";
    bool first_member = true;
    if (!request.frequencies.empty()) {
      os << "\"frequencies\": [";
      for (std::size_t i = 0; i < request.frequencies.size(); ++i)
        os << (i == 0 ? "\"" : ", \"") << hexfloat(request.frequencies[i]) << "\"";
      os << "]";
      first_member = false;
    }
    if (!request.scripts.empty()) {
      os << (first_member ? "" : ", ") << "\"scripts\": [";
      for (std::size_t i = 0; i < request.scripts.size(); ++i) {
        const Request::PolicyScript& s = request.scripts[i];
        os << (i == 0 ? "" : ", ");
        if (!s.ref.empty()) {
          os << "{\"ref\": \"" << json::escape(s.ref) << "\"}";
        } else {
          os << "{\"inline\": \"" << json::escape(s.text) << "\"}";
        }
      }
      os << "]";
    }
    os << "}";
  }
  os << "\n}\n";
  return os.str();
}

namespace {

/// Resolves (R112 on a bad ref), compiles (R114 with the compiler's own L1xx
/// diagnostics) and eagerly binds one policy script against the request's
/// model, so a script naming missing components is rejected at admission,
/// not at execution.
std::shared_ptr<const lang::CompiledPolicy> compile_script(
    const Request::PolicyScript& script, const std::string& model_root,
    const fmt::FaultMaintenanceTree& model) {
  std::string source = script.text;
  if (!script.ref.empty()) {
    if (script.ref.find("..") != std::string::npos || script.ref.front() == '/')
      throw RequestError("R112",
                         "policy script ref '" + script.ref +
                             "' must be a plain name inside the model root",
                         "absolute paths and '..' segments are rejected");
    const std::string path = model_root + "/" + script.ref;
    std::ifstream file(path);
    if (!file)
      throw RequestError("R112", "policy script ref '" + script.ref +
                                     "' not found under '" + model_root + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    source = buffer.str();
  }
  Diagnostics diags;
  std::optional<lang::CompiledPolicy> compiled = lang::compile_policy(source, diags);
  if (!compiled) throw RequestError("R114", diags.all());
  try {
    (void)lang::bind_policy(*compiled, lang::apply_policy(*compiled, model));
  } catch (const ModelErrors& e) {
    throw RequestError("R114", e.diagnostics());
  }
  return std::make_shared<const lang::CompiledPolicy>(*std::move(compiled));
}

}  // namespace

PreparedRequest prepare(const Request& request, const std::string& model_root) {
  std::string text = request.model_text;
  if (!request.model_ref.empty()) {
    if (request.model_ref.find("..") != std::string::npos ||
        request.model_ref.front() == '/')
      throw RequestError("R112",
                         "model ref '" + request.model_ref +
                             "' must be a plain name inside the model root",
                         "absolute paths and '..' segments are rejected");
    const std::string path = model_root + "/" + request.model_ref;
    std::ifstream file(path);
    if (!file)
      throw RequestError("R112", "model ref '" + request.model_ref +
                                     "' not found under '" + model_root + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  PreparedRequest prepared;
  try {
    prepared.model = fmt::parse_fmt(text);
  } catch (const ParseErrors& e) {
    throw RequestError("R113", e.diagnostics());
  } catch (const ModelErrors& e) {
    throw RequestError("R113", e.diagnostics());
  } catch (const ParseError& e) {
    throw RequestError("R113", {diagnostic_from(e)});
  } catch (const ModelError& e) {
    throw RequestError("R113", {diagnostic_from(e, "M104")});
  }

  // Corridor expansion: the jobs are built by the same fleet::fleet_plan the
  // in-process path uses, so a served corridor describes — and cache-hits —
  // exactly the jobs a local run of the same spec would.
  if (request.has_fleet) {
    fleet::CorridorSpec spec;
    spec.joints = request.fleet.joints;
    spec.seed = request.fleet.seed;
    spec.jitter = request.fleet.jitter;
    spec.coupling = request.fleet.coupling;
    fleet::FleetOptions options;
    options.settings = request.settings;
    if (!request.scripts.empty())
      options.policy =
          compile_script(request.scripts.front(), model_root, prepared.model);
    try {
      const fleet::Corridor corridor =
          fleet::generate_corridor(prepared.model, spec);
      prepared.jobs = std::move(fleet::fleet_plan(corridor, options).jobs);
    } catch (const DomainError& e) {
      throw RequestError("R112", std::string("invalid fleet spec: ") + e.what());
    }
    return prepared;
  }

  if (!request.has_policy) {
    batch::SweepJob job;
    job.label = "analysis";
    job.model = prepared.model;
    job.settings = request.settings;
    prepared.jobs.push_back(std::move(job));
    return prepared;
  }

  bool wants_inspections = false;
  for (double f : request.frequencies) wants_inspections = wants_inspections || f > 0;
  if (wants_inspections && prepared.model.inspections().empty())
    throw RequestError("R112", "model has no inspection modules to sweep");

  // Identical expansion (labels included) to the `fmtree sweep` CLI, so a
  // served sweep and a standalone one describe — and cache — the same jobs.
  prepared.jobs.reserve(request.frequencies.size() + request.scripts.size());
  for (double f : request.frequencies) {
    batch::SweepJob job;
    job.model = prepared.model;
    if (f == 0) {
      job.model.clear_inspections();
      job.label = "no-inspection";
    } else {
      for (std::size_t i = 0; i < job.model.inspections().size(); ++i)
        job.model.set_inspection_schedule(i, 1.0 / f);
      std::ostringstream name;
      name << f << "x-per-year";
      job.label = name.str();
    }
    job.settings = request.settings;
    prepared.jobs.push_back(std::move(job));
  }

  // Scripted candidates: compile each script (R114 carries the compiler's
  // own L1xx diagnostics) and attach the compiled policy to the job's
  // settings; the engines transform the model at execution time. Script
  // refs resolve under the same model root — and the same path discipline —
  // as model refs.
  for (const Request::PolicyScript& script : request.scripts) {
    std::shared_ptr<const lang::CompiledPolicy> policy =
        compile_script(script, model_root, prepared.model);
    batch::SweepJob job;
    job.label = policy->name;
    job.model = prepared.model;
    job.settings = request.settings;
    job.settings.policy = std::move(policy);
    prepared.jobs.push_back(std::move(job));
  }
  return prepared;
}

}  // namespace fmtree::serve
