// The "fmtree.response/v1" wire protocol of the serve daemon.
//
// Transport: one request per connection over a local SOCK_STREAM socket.
// The client writes one "fmtree.request/v1" JSON document (any formatting)
// and shuts down its write side; the server answers with newline-delimited
// JSON events (NDJSON — exactly one JSON object per line) and closes:
//
//   {"schema":"fmtree.response/v1","event":"accepted","id":...,"jobs":N}
//   {"schema":"fmtree.response/v1","event":"progress","phase":"sweep",...}
//   {"schema":"fmtree.response/v1","event":"result","jobs":[...],...}   (terminal)
//   {"schema":"fmtree.response/v1","event":"error","code":"R1xx",...}   (terminal)
//
// Result bodies reuse the existing hexfloat-exact "fmtree.result/v2"
// serialization (batch/result_cache.hpp) verbatim — each done job's
// "report" member is the cache entry document, whitespace-compacted to fit
// one NDJSON line. Compaction only removes inter-token whitespace, which
// JSON treats as insignificant; every value byte (hexfloats included) is
// untouched, so a decoded response is bit-identical to the server's
// computation and to the standalone CLI's.
#pragma once

#include <string>

#include "obs/progress.hpp"
#include "serve/session.hpp"

namespace fmtree::serve {

/// One-line events (each includes the trailing '\n').
std::string encode_accepted(const std::string& id, std::size_t jobs);
std::string encode_progress(const obs::Progress& progress);
std::string encode_result(const Response& response);
/// `error` must carry at least one diagnostic (RequestError always does).
std::string encode_error(const RequestError& error);

/// What one protocol line decodes to.
enum class EventKind : std::uint8_t { Accepted, Progress, Result, Error };

struct Event {
  EventKind kind = EventKind::Error;
  std::string id;          ///< accepted/result
  std::size_t jobs = 0;    ///< accepted
  /// progress; `phase` is interned to one of the producers' static phase
  /// literals ("" when the wire named an unknown phase), so the view never
  /// dangles when the Event is moved.
  obs::Progress progress;
  Response response;           ///< result
  std::string error_code;      ///< error
  std::vector<Diagnostic> diagnostics;  ///< error
};

/// Decodes one event line. Throws RequestError R121 on anything that is not
/// a well-formed fmtree.response/v1 event (the transport is broken).
Event decode_event(const std::string& line);

/// Removes insignificant whitespace from a JSON document (string contents
/// untouched). Used to embed multi-line documents in NDJSON lines.
std::string compact_json(const std::string& text);

}  // namespace fmtree::serve
