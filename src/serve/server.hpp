// serve::Server — the `fmtree serve` socket front end. Listens on a local
// SOCK_STREAM (AF_UNIX) socket and speaks the "fmtree.response/v1" NDJSON
// protocol (serve/protocol.hpp): one request per connection, answered with
// accepted / progress / result (or error) events.
//
// The Server only moves bytes; all scheduling, dedup, admission and
// cancellation live in the Session it fronts. A dropped connection cancels
// the caller's interest in its jobs (Ticket::cancel) — jobs shared with
// other connections keep running, which is what makes N identical concurrent
// requests cost one computation.
//
// Shutdown: when the stop control fires (the CLI wires SIGTERM to it), the
// listener closes, the Session drains — resolving every in-flight ticket,
// with completed jobs already in the cache — and every connection thread is
// joined before run() returns. A restarted daemon replays the completed
// prefix bit-identically from the cache.
//
// Fault sites (DESIGN.md catalog, exercised by the Chaos suite):
//   serve.accept   a just-accepted connection is dropped before any read;
//                  the daemon keeps serving later connections
//   serve.write    an event write is dropped mid-conversation; the client
//                  loses the connection but an already-running job completes
//                  and caches normally
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "serve/session.hpp"
#include "smc/run_control.hpp"

namespace fmtree::serve {

struct ServerConfig {
  std::string socket_path;
  /// Stop control (SIGTERM / --timeout); nullptr = run until destroyed.
  const smc::RunControl* stop = nullptr;
  /// Hard cap on one request document; larger requests are rejected (R110).
  std::size_t max_request_bytes = std::size_t{4} << 20;
  /// Accept-loop poll and per-ticket progress poll granularity.
  double poll_interval_s = 0.1;
};

namespace detail {
struct Connection;
}

class Server {
public:
  Server(Session& session, ServerConfig config);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Binds, listens and serves until the stop control fires, then drains the
  /// session and joins every connection. Throws IoError when the socket
  /// cannot be set up.
  void run();

  const ServerConfig& config() const noexcept { return config_; }

private:
  void handle_connection(int fd);
  std::string read_request(int fd);
  void reap(bool all);

  Session& session_;
  ServerConfig config_;
  std::vector<std::unique_ptr<detail::Connection>> connections_;
};

}  // namespace fmtree::serve
