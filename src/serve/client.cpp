#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/protocol.hpp"

namespace fmtree::serve {

namespace {

struct FdCloser {
  int fd = -1;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

[[noreturn]] void transport_error(const std::string& what) {
  throw RequestError("R121", what, "is the daemon running? start it with "
                                   "`fmtree serve <socket>`");
}

void write_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t n = data.size();
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      transport_error(std::string("failed to send request: ") +
                      std::strerror(errno));
    }
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
}

[[noreturn]] void rethrow_server_error(const Event& event) {
  if (event.error_code == "R120") {
    // Reconstruct the admission rejection so callers can catch the specific
    // type and retry later.
    throw AdmissionError(event.diagnostics.empty() ? "request rejected"
                                                   : event.diagnostics[0].message);
  }
  throw RequestError(event.error_code, event.diagnostics);
}

}  // namespace

Response request_over_socket(const std::string& socket_path, const Request& request,
                             const ClientEvents& events) {
  FdCloser sock{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (sock.fd < 0)
    transport_error(std::string("cannot create socket: ") + std::strerror(errno));

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path))
    transport_error("socket path must be 1.." +
                    std::to_string(sizeof(addr.sun_path) - 1) + " characters: '" +
                    socket_path + "'");
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(sock.fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0)
    transport_error("cannot connect to '" + socket_path +
                    "': " + std::strerror(errno));

  write_all(sock.fd, encode_request(request));
  // EOF on our write side is the request frame boundary.
  if (::shutdown(sock.fd, SHUT_WR) < 0)
    transport_error(std::string("cannot shut down write side: ") +
                    std::strerror(errno));

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t r = ::recv(sock.fd, chunk, sizeof chunk, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      transport_error(std::string("failed to read response: ") +
                      std::strerror(errno));
    }
    if (r == 0) {
      transport_error("connection closed before a terminal result/error event" +
                      (buffer.empty() ? std::string()
                                      : " (partial event of " +
                                            std::to_string(buffer.size()) +
                                            " bytes discarded)"));
    }
    buffer.append(chunk, static_cast<std::size_t>(r));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         start = nl + 1, nl = buffer.find('\n', start)) {
      Event event = decode_event(buffer.substr(start, nl - start));
      switch (event.kind) {
        case EventKind::Accepted:
          if (events.accepted) events.accepted(event.id, event.jobs);
          break;
        case EventKind::Progress:
          if (events.progress) events.progress(event.progress);
          break;
        case EventKind::Result: return std::move(event.response);
        case EventKind::Error: rethrow_server_error(event);
      }
    }
    buffer.erase(0, start);
  }
}

}  // namespace fmtree::serve
