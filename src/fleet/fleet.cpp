#include "fleet/fleet.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace fmtree::fleet {

batch::SweepPlan fleet_plan(const Corridor& corridor, const FleetOptions& options) {
  batch::SweepPlan plan;
  plan.threads = options.threads;
  plan.max_retries = options.max_retries;
  plan.stall_timeout_s = options.stall_timeout_s;
  plan.control = options.settings.control;
  plan.jobs.reserve(corridor.joints.size());
  for (const CorridorJoint& joint : corridor.joints) {
    batch::SweepJob job;
    job.label = joint.name;
    job.model = joint.model;
    job.settings = options.settings;
    job.settings.policy = options.policy;
    // Execution concerns are plan-level; a job-local control or telemetry
    // sink would also leak into nothing (run_sweep ignores them) — clear
    // them so the cache fingerprint story stays obvious.
    job.settings.control = nullptr;
    job.settings.telemetry = {};
    plan.jobs.push_back(std::move(job));
  }
  return plan;
}

FleetKpis aggregate_fleet(const Corridor& corridor,
                          std::span<const JointSummary> summaries,
                          const FleetOptions& options) {
  FleetKpis kpis;
  kpis.corridor_length_km = corridor.length_km();

  for (const JointSummary& joint : summaries) {
    const smc::KpiReport& r = joint.report;
    if (r.trajectories == 0) continue;  // failed shard: no data to sum
    ++kpis.joints;
    kpis.failures_per_year += r.failures_per_year.point;
    kpis.cost_per_year += r.cost_per_year.point;
    const double per_year = r.horizon > 0 ? 1.0 / r.horizon : 0.0;
    kpis.inspections_per_year += r.mean_inspections * per_year;
    kpis.repairs_per_year += r.mean_repairs * per_year;
    kpis.replacements_per_year += r.mean_replacements * per_year;
  }
  if (kpis.corridor_length_km > 0)
    kpis.cost_per_km_year = kpis.cost_per_year / kpis.corridor_length_km;

  // Crew demand: repairs ride along on inspection visits (condition-based
  // maintenance), so visits = inspection rounds + corrective call-outs
  // (one per expected system failure) + preventive replacement visits.
  kpis.crew_visits_per_year = kpis.inspections_per_year + kpis.failures_per_year +
                              kpis.replacements_per_year;
  kpis.crew_capacity_per_year = static_cast<double>(options.resources.crews) *
                                options.resources.visits_per_crew_year;
  if (kpis.crew_capacity_per_year > 0)
    kpis.crew_utilisation = kpis.crew_visits_per_year / kpis.crew_capacity_per_year;

  // Budget composition with the policy DSL: each joint runs its own copy of
  // the scripted budgets, so the corridor budget is joints x the annualised
  // refill of every refilling budget.
  if (options.policy) {
    double refill_per_year = 0.0;
    for (const lang::Budget& b : options.policy->budgets)
      if (b.refill_period > 0) refill_per_year += b.refill_amount / b.refill_period;
    kpis.budget_per_year = refill_per_year * static_cast<double>(kpis.joints);
    if (kpis.budget_per_year > 0)
      kpis.budget_utilisation = kpis.cost_per_year / kpis.budget_per_year;
  }

  // Worst-k by expected failures/yr, worst first, corridor order on ties.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < summaries.size(); ++i)
    if (summaries[i].report.trajectories > 0) order.push_back(i);
  const std::size_t k = std::min(options.worst_k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      const double fa = summaries[a].report.failures_per_year.point;
                      const double fb = summaries[b].report.failures_per_year.point;
                      return fa != fb ? fa > fb : a < b;
                    });
  order.resize(k);
  kpis.worst = std::move(order);
  return kpis;
}

FleetOutcome analyze_fleet(const Corridor& corridor, const FleetOptions& options,
                           batch::ResultCache* cache,
                           const obs::Telemetry& telemetry) {
  const batch::SweepPlan plan = fleet_plan(corridor, options);
  const batch::SweepOutcome outcome = batch::run_sweep(plan, cache, telemetry);

  FleetOutcome fleet;
  fleet.cache_hits = outcome.cache_hits;
  fleet.cache_misses = outcome.cache_misses;
  fleet.jobs_failed = outcome.jobs_failed;
  fleet.truncated = outcome.truncated;
  fleet.warnings = outcome.warnings;
  fleet.joints.reserve(corridor.joints.size());
  for (std::size_t i = 0; i < corridor.joints.size(); ++i) {
    JointSummary summary;
    summary.name = corridor.joints[i].name;
    summary.scale = corridor.joints[i].scale;
    if (i < outcome.results.size() && outcome.results[i].completed) {
      summary.report = outcome.results[i].report;
    } else if (i < outcome.results.size() && outcome.results[i].failed) {
      Diagnostic d;
      d.severity = Severity::Warning;
      d.code = "F101";
      d.message = "fleet shard '" + summary.name + "' failed [" +
                  outcome.results[i].failure.kind +
                  "]: " + outcome.results[i].failure.message;
      d.hint = "the joint is excluded from the corridor aggregates";
      fleet.warnings.push_back(std::move(d));
    }
    fleet.joints.push_back(std::move(summary));
  }
  fleet.kpis = aggregate_fleet(corridor, fleet.joints, options);

  if (telemetry.metrics != nullptr) {
    obs::MetricsRegistry& m = *telemetry.metrics;
    m.add(m.counter("fleet.joints"), corridor.joints.size());
    m.add(m.counter("fleet.cache_hits"), fleet.cache_hits);
    m.add(m.counter("fleet.cache_misses"), fleet.cache_misses);
    m.add(m.counter("fleet.jobs_failed"), fleet.jobs_failed);
  }
  return fleet;
}

}  // namespace fmtree::fleet
