#include "fleet/corridor.hpp"

#include <cmath>
#include <cstdio>

#include "util/distributions.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree::fleet {

namespace {

void validate_spec(const CorridorSpec& spec) {
  if (spec.joints == 0) throw DomainError("corridor needs >= 1 joint");
  if (!std::isfinite(spec.jitter) || spec.jitter < 0)
    throw DomainError("corridor jitter must be finite and >= 0");
  if (!std::isfinite(spec.coupling) || spec.coupling < 0)
    throw DomainError("corridor coupling must be finite and >= 0");
  if (!std::isfinite(spec.spacing_km) || !(spec.spacing_km > 0))
    throw DomainError("corridor spacing must be positive");
  for (const JointOverride& o : spec.overrides) {
    if (o.joint >= spec.joints)
      throw DomainError("corridor override joint index out of range");
    if (!std::isfinite(o.scale) || !(o.scale > 0))
      throw DomainError("corridor override scale must be positive");
  }
}

/// Excess load a neighbour with jitter factor j exerts: a short-lived joint
/// (j < 1) has a rougher running surface and transfers impact load; a
/// long-lived one (j >= 1) exerts none. Reads only the jitter draw, never
/// the neighbour's final scale, so overrides stay local to their joint.
double excess_load(const CorridorSpec& spec, std::size_t index) {
  const double j = joint_jitter(spec, index);
  return j < 1.0 ? 1.0 / j - 1.0 : 0.0;
}

}  // namespace

std::string joint_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "joint-%04zu", index);
  return buf;
}

double joint_jitter(const CorridorSpec& spec, std::size_t index) {
  if (spec.jitter == 0) return 1.0;
  // Lognormal with unit mean: mu = -sigma^2/2. One draw per joint from the
  // joint's own stream, so the factor is a pure function of (seed, index).
  RandomStream stream(spec.seed, index);
  return Distribution::lognormal(-0.5 * spec.jitter * spec.jitter, spec.jitter)
      .sample(stream);
}

double joint_scale(const CorridorSpec& spec, std::size_t index) {
  double scale = joint_jitter(spec, index);
  if (spec.coupling > 0) {
    // Mean-field neighbour coupling: the average excess load of the flanking
    // joints divides the lifetime scale. Edge joints have one neighbour; the
    // missing side contributes no load.
    double load = 0.0;
    if (index > 0) load += excess_load(spec, index - 1);
    if (index + 1 < spec.joints) load += excess_load(spec, index + 1);
    scale /= 1.0 + spec.coupling * 0.5 * load;
  }
  for (const JointOverride& o : spec.overrides)
    if (o.joint == index) scale *= o.scale;
  return scale;
}

Corridor generate_corridor(const fmt::FaultMaintenanceTree& base, CorridorSpec spec) {
  validate_spec(spec);
  Corridor corridor;
  corridor.joints.reserve(spec.joints);
  for (std::size_t i = 0; i < spec.joints; ++i) {
    CorridorJoint joint;
    joint.name = joint_name(i);
    joint.scale = joint_scale(spec, i);
    joint.model = base;
    if (joint.scale != 1.0) {
      for (fmt::NodeId leaf : base.leaves()) {
        const fmt::DegradationModel& d = base.ebe(leaf).degradation;
        std::vector<Distribution> sojourns;
        sojourns.reserve(d.sojourns().size());
        for (const Distribution& s : d.sojourns())
          sojourns.push_back(s.scaled(joint.scale));
        joint.model.set_ebe_degradation(
            leaf, fmt::DegradationModel(std::move(sojourns), d.threshold_phase()));
      }
    }
    corridor.joints.push_back(std::move(joint));
  }
  corridor.spec = std::move(spec);
  return corridor;
}

}  // namespace fmtree::fleet
