// Fleet analysis: shard a corridor's per-joint analyses across the shared
// work-stealing sweep pool and aggregate corridor-level KPIs.
//
// Each joint becomes one batch::SweepJob carrying its own model and the
// shared analysis settings, so a shard is bit-identical to a standalone run
// of that joint (the sweep determinism contract) and its content-addressed
// cache key depends only on (joint model, settings). Re-running a corridor
// after editing one joint therefore re-simulates exactly that joint.
//
// The aggregator composes with the .mpl policy DSL: when FleetOptions::policy
// is set, every joint runs under the scripted calendars (settings.policy, the
// same mechanism the sweep grid uses), the policy's crew counter bounds
// repairs per visit inside the simulation, and its budget refill rates feed
// the corridor budget-utilisation KPI.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "batch/result_cache.hpp"
#include "batch/sweep.hpp"
#include "fleet/corridor.hpp"
#include "lang/policy.hpp"
#include "obs/telemetry.hpp"
#include "smc/kpi.hpp"
#include "util/diagnostics.hpp"

namespace fmtree::fleet {

/// The maintenance resources a corridor shares: a pool of crews, each good
/// for a bounded number of site visits per year. Render-side parameters —
/// they shape the utilisation KPI, never a simulation bit.
struct SharedResources {
  std::uint32_t crews = 2;
  /// Site visits one crew can make per year (default: one per working day).
  double visits_per_crew_year = 250.0;
};

struct FleetOptions {
  smc::AnalysisSettings settings;
  SharedResources resources;
  /// How many worst joints (by expected failures/yr) to surface.
  std::size_t worst_k = 5;
  /// Optional scripted maintenance policy applied to every joint.
  std::shared_ptr<const lang::CompiledPolicy> policy;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  std::uint32_t max_retries = 2;
  double stall_timeout_s = 0.0;
};

/// One joint's analysed result, in corridor order.
struct JointSummary {
  std::string name;
  double scale = 1.0;
  smc::KpiReport report;
};

/// Corridor-level KPIs, all derived from per-joint reports by exact sums in
/// corridor order — so bit-identical per-joint reports imply bit-identical
/// aggregates, whatever executed the shards.
struct FleetKpis {
  std::size_t joints = 0;  ///< joints aggregated (failed shards excluded)
  double corridor_length_km = 0.0;

  double failures_per_year = 0.0;  ///< corridor total, point estimates summed
  double cost_per_year = 0.0;
  double cost_per_km_year = 0.0;

  /// Maintenance demand: inspection rounds, condition-based repairs and
  /// preventive replacements per year across the corridor.
  double inspections_per_year = 0.0;
  double repairs_per_year = 0.0;
  double replacements_per_year = 0.0;
  /// Crew site visits per year: inspection rounds (repairs ride along on the
  /// inspection visit under condition-based maintenance) plus corrective
  /// call-outs (one per system failure) plus replacement visits.
  double crew_visits_per_year = 0.0;
  double crew_capacity_per_year = 0.0;  ///< crews * visits_per_crew_year
  double crew_utilisation = 0.0;        ///< visits / capacity (0 if no capacity)

  /// Annualised budget refill of the scripted policy, corridor-wide (the
  /// policy applies per joint); 0 when no policy or no refilling budget.
  double budget_per_year = 0.0;
  double budget_utilisation = 0.0;  ///< cost_per_year / budget_per_year

  /// Indices into the summaries span of the worst-k joints by expected
  /// failures per year, worst first (ties broken by corridor order).
  std::vector<std::size_t> worst;
};

struct FleetOutcome {
  std::vector<JointSummary> joints;  ///< corridor order; failed shards keep
                                     ///< their name with a default report
  FleetKpis kpis;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t jobs_failed = 0;
  bool truncated = false;
  std::vector<Diagnostic> warnings;
};

/// The corridor as a sweep plan: one job per joint, labeled joint_name(i),
/// carrying options.settings (+ policy) with control/telemetry cleared —
/// execution concerns stay plan-level. Exposed so the daemon and the fleet
/// CLI expand identically.
batch::SweepPlan fleet_plan(const Corridor& corridor, const FleetOptions& options);

/// Aggregates per-joint summaries (corridor order) into FleetKpis.
FleetKpis aggregate_fleet(const Corridor& corridor,
                          std::span<const JointSummary> summaries,
                          const FleetOptions& options);

/// Runs the corridor through the shared pool and aggregates. Failed shards
/// become warnings (code F101) and are excluded from the aggregates. Emits
/// fleet.* counters (joints, cache_hits, cache_misses, jobs_failed) on the
/// telemetry metrics sink.
FleetOutcome analyze_fleet(const Corridor& corridor, const FleetOptions& options,
                           batch::ResultCache* cache = nullptr,
                           const obs::Telemetry& telemetry = {});

}  // namespace fmtree::fleet
