// Fleet-scale corridor models: N electrically insulated joints instantiated
// from one calibrated base model.
//
// The paper studies a single EI joint; an infrastructure manager maintains a
// corridor of hundreds. generate_corridor() derives one model per joint by
// time-rescaling every degradation sojourn of the base model with a
// deterministic per-joint factor composed of
//
//  * jitter    — multiplicative lognormal manufacturing/installation spread
//                with unit mean, drawn from RandomStream(seed, joint_index)
//                so joint i's factor never depends on any other joint;
//  * coupling  — neighbour load-coupling in the RDEP spirit: a joint flanked
//                by weaker-than-average neighbours degrades faster, because
//                their rough running surfaces raise its impact load. The
//                coupling is *mean-field*: it reads only the neighbours'
//                jitter draws (themselves pure functions of (seed, index)),
//                never their analysis results, so every joint stays an
//                independent model with a stable content-addressed cache
//                key. coupling = 0 reproduces the jitter-only corridor
//                bit-exactly;
//  * overrides — explicit per-joint edits (e.g. "joint 17 was just renewed")
//                applied last. Because neither jitter nor coupling reads an
//                override, editing one joint changes exactly one model hash:
//                re-running a 1000-joint corridor after an edit re-simulates
//                one joint and cache-hits the other 999.
//
// Determinism: generate_corridor is a pure function of (base, spec). Two
// calls with equal inputs produce corridors whose models hash identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fmt/fmtree.hpp"

namespace fmtree::fleet {

/// Explicit per-joint edit: an extra lifetime time-scale factor multiplied
/// onto the generated one (scale > 1 = longer-lived, e.g. freshly renewed;
/// scale < 1 = degraded faster than the fleet).
struct JointOverride {
  std::size_t joint = 0;
  double scale = 1.0;
};

struct CorridorSpec {
  std::size_t joints = 50;
  /// Fleet seed: independent of the analysis seed (the same corridor can be
  /// analysed under many simulation seeds and vice versa).
  std::uint64_t seed = 0;
  /// Relative spread of the per-joint lifetime scale (lognormal sigma, unit
  /// mean). 0 = identical joints.
  double jitter = 0.1;
  /// Neighbour load-coupling strength, >= 0 (see file comment). 0 = none.
  double coupling = 0.0;
  /// Track distance between adjacent joints, for per-km cost KPIs.
  double spacing_km = 1.0;
  std::vector<JointOverride> overrides;
};

struct CorridorJoint {
  std::string name;    ///< "joint-0007" (4-digit zero-padded index)
  double scale = 1.0;  ///< final lifetime scale applied to the base model
  fmt::FaultMaintenanceTree model;
};

struct Corridor {
  CorridorSpec spec;
  std::vector<CorridorJoint> joints;

  double length_km() const noexcept {
    return spec.spacing_km * static_cast<double>(joints.size());
  }
};

/// Canonical joint label, shared by sweep jobs and the daemon.
std::string joint_name(std::size_t index);

/// The jitter-only factor of one joint: a pure function of (spec.seed,
/// index), independent of every other joint and of the overrides. Exposed
/// for tests pinning the independence property.
double joint_jitter(const CorridorSpec& spec, std::size_t index);

/// The final lifetime scale of one joint (jitter x coupling x override).
double joint_scale(const CorridorSpec& spec, std::size_t index);

/// Instantiates the corridor. Throws DomainError on an invalid spec (zero
/// joints, negative/non-finite jitter or coupling, non-positive spacing or
/// override scale, an override index out of range).
Corridor generate_corridor(const fmt::FaultMaintenanceTree& base, CorridorSpec spec);

}  // namespace fmtree::fleet
