// Maintenance strategies as data: a policy describes how often a system is
// inspected and renewed and at what cost, independent of the system's
// failure structure. Model builders (e.g. eijoint::build_ei_joint) turn a
// policy into the concrete maintenance modules of an FMT, which lets the
// optimizer sweep policies without knowing the model.
#pragma once

#include <functional>
#include <string>

#include "fmt/fmtree.hpp"

namespace fmtree::maintenance {

/// A named maintenance strategy. Periods <= 0 disable the mechanism.
struct MaintenancePolicy {
  std::string name;

  double inspection_period = 0.0;  ///< time between inspections; <=0: none
  double inspection_cost = 0.0;    ///< cost of one inspection round

  double replacement_period = 0.0; ///< time between preventive renewals; <=0: none
  double replacement_cost = 0.0;   ///< cost of one preventive renewal

  fmt::CorrectivePolicy corrective{};  ///< reaction to system failure

  bool has_inspections() const noexcept { return inspection_period > 0; }
  bool has_replacements() const noexcept { return replacement_period > 0; }
  double inspections_per_year() const noexcept {
    return has_inspections() ? 1.0 / inspection_period : 0.0;
  }
};

/// Builds a concrete FMT implementing a policy. Provided by each case study.
using ModelFactory = std::function<fmt::FaultMaintenanceTree(const MaintenancePolicy&)>;

/// Applies a policy's modules to an existing FMT whose structure is already
/// built: one inspection module over all inspectable leaves, one replacement
/// module over all leaves, and the corrective policy. Convenience for model
/// builders.
void apply_policy(fmt::FaultMaintenanceTree& model, const MaintenancePolicy& policy);

}  // namespace fmtree::maintenance
