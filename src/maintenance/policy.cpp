#include "maintenance/policy.hpp"

#include "util/error.hpp"

namespace fmtree::maintenance {

void apply_policy(fmt::FaultMaintenanceTree& model, const MaintenancePolicy& policy) {
  if (policy.has_inspections()) {
    std::vector<fmt::NodeId> inspectable;
    for (fmt::NodeId leaf : model.leaves())
      if (model.ebe(leaf).degradation.inspectable()) inspectable.push_back(leaf);
    if (inspectable.empty())
      throw ModelError("policy '" + policy.name +
                       "' has inspections but no leaf is inspectable");
    model.add_inspection(fmt::InspectionModule{
        policy.name.empty() ? "inspection" : policy.name + "-inspection",
        policy.inspection_period, -1.0, policy.inspection_cost,
        std::move(inspectable)});
  }
  if (policy.has_replacements()) {
    std::vector<fmt::NodeId> all(model.leaves().begin(), model.leaves().end());
    model.add_replacement(fmt::ReplacementModule{
        policy.name.empty() ? "renewal" : policy.name + "-renewal",
        policy.replacement_period, -1.0, policy.replacement_cost, std::move(all)});
  }
  model.set_corrective(policy.corrective);
}

}  // namespace fmtree::maintenance
