// Value-of-repair analysis: for each condition-based repair action, what do
// the inspections that trigger it actually buy? Answered by a one-at-a-time
// knockout — remove the mode from every inspection's target list and compare
// against the full policy under common random numbers. This is the question
// maintenance engineers ask of each line item ("is grinding worth it?"),
// and it is only answerable on the full FMT: static importance measures
// cannot see maintenance.
#pragma once

#include <string>
#include <vector>

#include "fmt/fmtree.hpp"
#include "smc/compare.hpp"

namespace fmtree::maintenance {

/// The marginal value of keeping one mode under inspection.
struct RepairValue {
  std::string mode;            ///< leaf name
  std::string action;          ///< repair action name
  /// Paired differences, knockout minus full policy: positive failure and
  /// cost differences mean the repairs were worth having.
  ConfidenceInterval extra_failures;
  ConfidenceInterval extra_cost;
  double repair_spend = 0.0;   ///< E[spend on this action under the full policy]

  /// Net value per run: avoided cost minus what the repairs cost. Positive
  /// = the action pays for itself.
  double net_value() const noexcept { return extra_cost.point; }
};

/// Runs the knockout for every leaf that is an inspection target, sorted by
/// descending net value. Each knockout reuses the same random streams as
/// the baseline (common random numbers).
std::vector<RepairValue> repair_value_analysis(const fmt::FaultMaintenanceTree& model,
                                               const smc::AnalysisSettings& settings);

}  // namespace fmtree::maintenance
