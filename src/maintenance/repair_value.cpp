#include "maintenance/repair_value.hpp"

#include <algorithm>

#include "smc/kpi.hpp"
#include "util/error.hpp"

namespace fmtree::maintenance {

std::vector<RepairValue> repair_value_analysis(const fmt::FaultMaintenanceTree& model,
                                               const smc::AnalysisSettings& settings) {
  model.validate();
  if (model.inspections().empty())
    throw DomainError("repair-value analysis needs at least one inspection module");

  // Baseline spend per action, for the payback column.
  const smc::KpiReport baseline = smc::analyze(model, settings);

  // Every leaf that some inspection actually covers.
  std::vector<fmt::NodeId> covered;
  for (const fmt::InspectionModule& m : model.inspections()) {
    for (fmt::NodeId t : m.targets) {
      if (std::find(covered.begin(), covered.end(), t) == covered.end())
        covered.push_back(t);
    }
  }

  std::vector<RepairValue> out;
  out.reserve(covered.size());
  for (fmt::NodeId leaf : covered) {
    fmt::FaultMaintenanceTree knockout = model;
    // Remove the leaf from every module; iterate backwards because removing
    // a module's last target deletes the module and shifts later indices.
    for (std::size_t m = knockout.inspections().size(); m-- > 0;)
      knockout.remove_inspection_target(m, leaf);

    const smc::PairedComparison cmp = smc::compare_models(knockout, model, settings);
    RepairValue value;
    value.mode = model.ebe(leaf).name;
    value.action = model.ebe(leaf).repair.action;
    value.extra_failures = cmp.failures_diff;
    value.extra_cost = cmp.cost_diff;
    value.repair_spend =
        baseline.repairs_per_leaf[model.ebe_index(leaf)] * model.ebe(leaf).repair.cost;
    out.push_back(std::move(value));
  }
  std::sort(out.begin(), out.end(), [](const RepairValue& a, const RepairValue& b) {
    return a.net_value() > b.net_value();
  });
  return out;
}

}  // namespace fmtree::maintenance
