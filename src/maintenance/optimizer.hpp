// Maintenance optimization: sweep a policy dimension, estimate the yearly
// cost of each candidate, and locate the optimum — the machinery behind the
// paper's finding that the current EI-joint policy is close to cost-optimal.
#pragma once

#include <memory>
#include <vector>

#include "batch/result_cache.hpp"
#include "lang/policy.hpp"
#include "maintenance/policy.hpp"
#include "smc/kpi.hpp"

namespace fmtree::maintenance {

/// One evaluated policy on the cost curve.
struct PolicyEvaluation {
  MaintenancePolicy policy;
  smc::KpiReport kpis;

  double cost_per_year() const noexcept { return kpis.cost_per_year.point; }
};

struct SweepResult {
  std::vector<PolicyEvaluation> curve;  ///< in the order the candidates were given
  std::size_t best_index = 0;           ///< argmin of cost_per_year

  const PolicyEvaluation& best() const { return curve.at(best_index); }
};

/// Evaluates every candidate policy with the same settings (same seed, so
/// curves are comparable) and returns the cost curve plus the cost-optimal
/// candidate. Candidates must be non-empty.
///
/// All candidates are simulated over one shared work-stealing pool
/// (batch::run_sweep), so the wall-clock cost is that of the total
/// trajectory count, not of the slowest candidate times the candidate
/// count. Results are bit-identical to evaluating each candidate with
/// smc::analyze. When `cache` is non-null, previously computed candidates
/// are served from it and fresh evaluations are stored back.
///
/// If settings.control stops the run, candidates that did not finish carry
/// kpis.truncated == true with default (zero) KPI values and are excluded
/// from the best-candidate selection.
SweepResult sweep_policies(const ModelFactory& factory,
                           const std::vector<MaintenancePolicy>& candidates,
                           const smc::AnalysisSettings& settings,
                           batch::ResultCache* cache = nullptr);

/// Evaluates scripted maintenance policies (compiled src/lang scripts) on
/// one shared base model: each candidate runs with its compiled policy in
/// the settings (the engines replace the model's built-in inspections with
/// the script's calendars), all over the same work-stealing pool and cache
/// machinery as the MaintenancePolicy overload — so scripted and built-in
/// candidates can be compared on one cost curve. Labels and the returned
/// curve's MaintenancePolicy names are the scripts' policy names; the other
/// MaintenancePolicy fields are not meaningful for scripted candidates.
/// Scripted evaluations never share cache entries with built-in ones (the
/// compiled fingerprint is part of the settings fingerprint).
SweepResult sweep_policies(
    const fmt::FaultMaintenanceTree& model,
    const std::vector<std::shared_ptr<const lang::CompiledPolicy>>& scripts,
    const smc::AnalysisSettings& settings, batch::ResultCache* cache = nullptr);

/// Convenience: candidates that differ from `base` only in inspection
/// frequency (inspections per year, 0 = none). Names are derived.
std::vector<MaintenancePolicy> inspection_frequency_candidates(
    const MaintenancePolicy& base, const std::vector<double>& frequencies_per_year);

/// Result of a continuous refinement of the inspection frequency.
struct RefinedOptimum {
  double frequency = 0.0;      ///< inspections per year at the minimum found
  double cost_per_year = 0.0;
  std::size_t evaluations = 0;
};

/// Golden-section search over the inspection frequency in [lo, hi]
/// (inspections per year, lo > 0). The Monte-Carlo seed is fixed, making
/// the objective a deterministic function, but residual sampling noise of
/// ~CI-half-width remains — treat the result as a refinement of a grid
/// optimum, not a certificate. The cost curve must be unimodal over the
/// bracket for the search to be meaningful (true for the case studies).
/// `cache` (optional) is consulted per probe — a refinement that revisits a
/// bracket already swept on the grid reuses those evaluations for free.
RefinedOptimum refine_inspection_frequency(const ModelFactory& factory,
                                           const MaintenancePolicy& base, double lo,
                                           double hi,
                                           const smc::AnalysisSettings& settings,
                                           int iterations = 16,
                                           batch::ResultCache* cache = nullptr);

}  // namespace fmtree::maintenance
