// Maintenance optimization: sweep a policy dimension, estimate the yearly
// cost of each candidate, and locate the optimum — the machinery behind the
// paper's finding that the current EI-joint policy is close to cost-optimal.
#pragma once

#include <vector>

#include "maintenance/policy.hpp"
#include "smc/kpi.hpp"

namespace fmtree::maintenance {

/// One evaluated policy on the cost curve.
struct PolicyEvaluation {
  MaintenancePolicy policy;
  smc::KpiReport kpis;

  double cost_per_year() const noexcept { return kpis.cost_per_year.point; }
};

struct SweepResult {
  std::vector<PolicyEvaluation> curve;  ///< in the order the candidates were given
  std::size_t best_index = 0;           ///< argmin of cost_per_year

  const PolicyEvaluation& best() const { return curve.at(best_index); }
};

/// Evaluates every candidate policy with the same settings (same seed, so
/// curves are comparable) and returns the cost curve plus the cost-optimal
/// candidate. Candidates must be non-empty.
SweepResult sweep_policies(const ModelFactory& factory,
                           const std::vector<MaintenancePolicy>& candidates,
                           const smc::AnalysisSettings& settings);

/// Convenience: candidates that differ from `base` only in inspection
/// frequency (inspections per year, 0 = none). Names are derived.
std::vector<MaintenancePolicy> inspection_frequency_candidates(
    const MaintenancePolicy& base, const std::vector<double>& frequencies_per_year);

/// Result of a continuous refinement of the inspection frequency.
struct RefinedOptimum {
  double frequency = 0.0;      ///< inspections per year at the minimum found
  double cost_per_year = 0.0;
  std::size_t evaluations = 0;
};

/// Golden-section search over the inspection frequency in [lo, hi]
/// (inspections per year, lo > 0). The Monte-Carlo seed is fixed, making
/// the objective a deterministic function, but residual sampling noise of
/// ~CI-half-width remains — treat the result as a refinement of a grid
/// optimum, not a certificate. The cost curve must be unimodal over the
/// bracket for the search to be meaningful (true for the case studies).
RefinedOptimum refine_inspection_frequency(const ModelFactory& factory,
                                           const MaintenancePolicy& base, double lo,
                                           double hi,
                                           const smc::AnalysisSettings& settings,
                                           int iterations = 16);

}  // namespace fmtree::maintenance
