#include "maintenance/optimizer.hpp"

#include <cmath>
#include <sstream>
#include <utility>

#include "batch/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "util/error.hpp"

namespace fmtree::maintenance {

namespace {

void count_evaluation(const smc::AnalysisSettings& settings) {
  if (obs::MetricsRegistry* metrics = settings.telemetry.metrics)
    metrics->add(metrics->counter("optimizer.evaluations"));
}

}  // namespace

SweepResult sweep_policies(const ModelFactory& factory,
                           const std::vector<MaintenancePolicy>& candidates,
                           const smc::AnalysisSettings& settings,
                           batch::ResultCache* cache) {
  if (candidates.empty()) throw DomainError("policy sweep needs candidates");
  batch::SweepPlan plan;
  plan.threads = settings.threads;
  plan.control = settings.control;
  plan.jobs.reserve(candidates.size());
  for (const MaintenancePolicy& policy : candidates) {
    batch::SweepJob job;
    job.label = policy.name;
    job.model = factory(policy);
    job.settings = settings;
    job.settings.control = nullptr;    // interruption is plan-level
    job.settings.telemetry = {};       // instrumentation too
    plan.jobs.push_back(std::move(job));
  }
  batch::SweepOutcome outcome = batch::run_sweep(plan, cache, settings.telemetry);

  SweepResult result;
  result.curve.reserve(candidates.size());
  bool have_best = false;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    batch::JobResult& job = outcome.results[i];
    if (!job.completed) {
      job.report.truncated = true;
      job.report.stop_reason = outcome.stop_reason;
    }
    result.curve.push_back(PolicyEvaluation{candidates[i], std::move(job.report)});
    count_evaluation(settings);
    if (job.completed &&
        (!have_best || result.curve[i].cost_per_year() <
                           result.curve[result.best_index].cost_per_year())) {
      result.best_index = i;
      have_best = true;
    }
  }
  return result;
}

SweepResult sweep_policies(
    const fmt::FaultMaintenanceTree& model,
    const std::vector<std::shared_ptr<const lang::CompiledPolicy>>& scripts,
    const smc::AnalysisSettings& settings, batch::ResultCache* cache) {
  if (scripts.empty()) throw DomainError("policy sweep needs candidates");
  batch::SweepPlan plan;
  plan.threads = settings.threads;
  plan.control = settings.control;
  plan.jobs.reserve(scripts.size());
  for (const std::shared_ptr<const lang::CompiledPolicy>& script : scripts) {
    if (script == nullptr) throw DomainError("scripted candidate is null");
    batch::SweepJob job;
    job.label = script->name;
    job.model = model;
    job.settings = settings;
    job.settings.policy = script;
    job.settings.control = nullptr;    // interruption is plan-level
    job.settings.telemetry = {};       // instrumentation too
    plan.jobs.push_back(std::move(job));
  }
  batch::SweepOutcome outcome = batch::run_sweep(plan, cache, settings.telemetry);

  SweepResult result;
  result.curve.reserve(scripts.size());
  bool have_best = false;
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    batch::JobResult& job = outcome.results[i];
    if (!job.completed) {
      job.report.truncated = true;
      job.report.stop_reason = outcome.stop_reason;
    }
    MaintenancePolicy label_only;
    label_only.name = scripts[i]->name;
    result.curve.push_back(
        PolicyEvaluation{std::move(label_only), std::move(job.report)});
    count_evaluation(settings);
    if (job.completed &&
        (!have_best || result.curve[i].cost_per_year() <
                           result.curve[result.best_index].cost_per_year())) {
      result.best_index = i;
      have_best = true;
    }
  }
  return result;
}

std::vector<MaintenancePolicy> inspection_frequency_candidates(
    const MaintenancePolicy& base, const std::vector<double>& frequencies_per_year) {
  if (frequencies_per_year.empty())
    throw DomainError("need at least one inspection frequency");
  std::vector<MaintenancePolicy> out;
  out.reserve(frequencies_per_year.size());
  for (double f : frequencies_per_year) {
    if (f < 0 || !std::isfinite(f))
      throw DomainError("inspection frequency must be finite and >= 0");
    MaintenancePolicy p = base;
    std::ostringstream name;
    if (f == 0) {
      p.inspection_period = 0;
      name << "no-inspection";
    } else {
      p.inspection_period = 1.0 / f;
      name << f << "x-per-year";
    }
    p.name = name.str();
    out.push_back(std::move(p));
  }
  return out;
}

RefinedOptimum refine_inspection_frequency(const ModelFactory& factory,
                                           const MaintenancePolicy& base, double lo,
                                           double hi,
                                           const smc::AnalysisSettings& settings,
                                           int iterations, batch::ResultCache* cache) {
  if (!(lo > 0) || !(hi > lo)) throw DomainError("need 0 < lo < hi");
  if (iterations < 1) throw DomainError("need at least one iteration");
  auto refine_span = obs::maybe_span(settings.telemetry.tracer, "refine");

  // Golden-section evaluates two probes up front, then one per iteration.
  const auto total_evaluations = static_cast<std::uint64_t>(iterations) + 2;
  std::size_t evaluations = 0;
  const auto cost_at = [&](double freq) {
    MaintenancePolicy p = base;
    p.inspection_period = 1.0 / freq;
    ++evaluations;
    const fmt::FaultMaintenanceTree model = factory(p);
    double cost = 0.0;
    if (cache != nullptr) {
      const batch::CacheKey key = batch::kpi_cache_key(model, settings);
      if (std::optional<smc::KpiReport> hit = cache->get(key)) {
        cost = hit->cost_per_year.point;
      } else {
        const smc::KpiReport report = smc::analyze(model, settings);
        cache->put(key, report);  // refuses truncated reports itself
        cost = report.cost_per_year.point;
      }
    } else {
      cost = smc::analyze(model, settings).cost_per_year.point;
    }
    count_evaluation(settings);
    if (obs::ProgressReporter* progress = settings.telemetry.progress) {
      obs::Progress p2;
      p2.phase = "refine";
      p2.done = evaluations;
      p2.total = total_evaluations;
      progress->update(p2);
    }
    return cost;
  };

  constexpr double kInvPhi = 0.61803398874989484;  // 1/golden ratio
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = cost_at(c);
  double fd = cost_at(d);
  for (int it = 0; it < iterations; ++it) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = cost_at(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = cost_at(d);
    }
  }
  RefinedOptimum out;
  out.frequency = fc < fd ? c : d;
  out.cost_per_year = std::min(fc, fd);
  out.evaluations = evaluations;
  return out;
}

}  // namespace fmtree::maintenance
