#include "lang/runtime.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fmtree::lang {

namespace {

/// Resolves one calendar's target list to leaf NodeIds: the named
/// components, or every inspectable leaf (ascending leaf order) under
/// `targets all`. Unknown or non-leaf names become L135/L136 diagnostics.
std::vector<fmt::NodeId> resolve_targets(const CompiledPolicy& policy,
                                         const Calendar& cal,
                                         const fmt::FaultMaintenanceTree& model,
                                         Diagnostics& diags) {
  std::vector<fmt::NodeId> out;
  if (cal.targets_all) {
    for (fmt::NodeId leaf : model.leaves())
      if (model.ebe(leaf).degradation.inspectable()) out.push_back(leaf);
    if (out.empty())
      diags.error("L136", {},
                  "calendar '" + cal.name +
                      "' targets all inspectable components, but the model has "
                      "none",
                  "give every-component policies an explicit 'targets' list");
    return out;
  }
  for (std::uint32_t slot : cal.target_slots) {
    const NameRef& ref = policy.name_refs[slot];
    const std::optional<fmt::NodeId> id = model.find(ref.name);
    if (!id) {
      diags.error("L135", ref.loc,
                  "unknown component '" + ref.name + "'",
                  "targets must name basic events of the model");
      continue;
    }
    const auto leaves = model.leaves();
    if (std::find(leaves.begin(), leaves.end(), *id) == leaves.end()) {
      diags.error("L136", ref.loc,
                  "'" + ref.name + "' is not a basic event",
                  "calendars visit components, not gates");
      continue;
    }
    out.push_back(*id);
  }
  return out;
}

}  // namespace

double BoundPolicy::budget_available(std::uint32_t b, double now,
                                     const PolicyState& st) const {
  const Budget& budget = compiled->budgets[b];
  double total = budget.initial;
  if (budget.refill_period > 0 && budget.refill_amount > 0)
    total += budget.refill_amount * std::floor(now / budget.refill_period);
  return total - st.budget_spent[b];
}

void PolicyState::reset(const BoundPolicy& bp) {
  budget_spent.assign(bp.compiled->budgets.size(), 0.0);
  repaired_this_round.assign(bp.num_leaves, 0);
  repairs_this_round = 0;
}

void PolicyState::begin_round() {
  std::fill(repaired_this_round.begin(), repaired_this_round.end(),
            std::uint8_t{0});
  repairs_this_round = 0;
}

fmt::FaultMaintenanceTree apply_policy(const CompiledPolicy& policy,
                                       const fmt::FaultMaintenanceTree& model) {
  Diagnostics diags;
  fmt::FaultMaintenanceTree out = model;
  out.clear_inspections();
  for (const Calendar& cal : policy.calendars) {
    std::vector<fmt::NodeId> targets = resolve_targets(policy, cal, model, diags);
    if (targets.empty()) continue;  // resolve_targets already diagnosed
    fmt::InspectionModule module;
    module.name = cal.name;
    module.period = cal.period;
    module.first_at = cal.first_at;
    module.cost = cal.cost;
    module.targets = std::move(targets);
    module.detection_probability = 1.0;  // scripts model imperfection explicitly
    out.add_inspection(std::move(module));
  }
  if (diags.has_errors()) throw ModelErrors(diags.all());
  return out;
}

BoundPolicy bind_policy(const CompiledPolicy& policy,
                        const fmt::FaultMaintenanceTree& model) {
  Diagnostics diags;
  BoundPolicy bound;
  bound.compiled = &policy;
  bound.num_leaves = static_cast<std::uint32_t>(model.num_ebes());

  const auto leaf_index = [&](fmt::NodeId id) {
    return static_cast<std::uint32_t>(model.ebe_index(id));
  };

  bound.ref_leaf.reserve(policy.name_refs.size());
  for (const NameRef& ref : policy.name_refs) {
    const std::optional<fmt::NodeId> id = model.find(ref.name);
    const auto leaves = model.leaves();
    if (!id || std::find(leaves.begin(), leaves.end(), *id) == leaves.end()) {
      diags.error(id ? "L136" : "L135", ref.loc,
                  id ? "'" + ref.name + "' is not a basic event"
                     : "unknown component '" + ref.name + "'",
                  "scripts read and repair basic events of the model");
      bound.ref_leaf.push_back(0);
      continue;
    }
    bound.ref_leaf.push_back(leaf_index(*id));
  }

  bound.target_begin.push_back(0);
  for (const Calendar& cal : policy.calendars) {
    for (fmt::NodeId id : resolve_targets(policy, cal, model, diags))
      bound.calendar_targets.push_back(leaf_index(id));
    bound.target_begin.push_back(
        static_cast<std::uint32_t>(bound.calendar_targets.size()));
  }

  bound.leaf_threshold.reserve(model.num_ebes());
  bound.leaf_phases.reserve(model.num_ebes());
  for (const fmt::ExtendedBasicEvent& ebe : model.ebes()) {
    bound.leaf_threshold.push_back(
        static_cast<double>(ebe.degradation.threshold_phase()));
    bound.leaf_phases.push_back(static_cast<double>(ebe.degradation.phases()));
  }

  if (diags.has_errors()) throw ModelErrors(diags.all());
  return bound;
}

}  // namespace fmtree::lang
