#include "lang/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace fmtree::lang {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.' ||
         c == '-';
}

bool is_number_start(char c, char next) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0 ||
         (c == '.' && std::isdigit(static_cast<unsigned char>(next)) != 0);
}

/// Shared scanner. With `diags == nullptr` lexical errors throw ParseError;
/// with a sink they are recorded and skipped so the whole input is scanned
/// in one pass.
std::vector<Token> tokenize_impl(const std::string& input, Diagnostics* diags) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  std::size_t line_start = 0;  // index of the first character of `line`
  const std::size_t n = input.size();
  const auto column = [&](std::size_t at) { return at - line_start + 1; };
  const auto fail = [&](std::size_t at, std::string code, const std::string& msg,
                        const std::string& token, const std::string& hint) {
    if (diags == nullptr)
      throw ParseError(line, column(at), token, msg, std::move(code), hint);
    diags->error(std::move(code), {line, column(at)}, msg, hint, token);
  };
  const auto push = [&](TokenType type, std::string text, std::size_t at) {
    out.push_back(Token{type, std::move(text), 0.0, false, line, column(at)});
  };
  while (i < n) {
    const char c = input[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '"') {
      std::string text;
      const std::size_t start = i;
      // A string may span lines; report it at its opening quote (scanning
      // past a '\n' moves line_start beyond `start`, so column(start) would
      // underflow afterwards).
      const std::size_t start_line = line;
      const std::size_t start_column = column(start);
      ++i;
      while (i < n && input[i] != '"') {
        if (input[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        text += input[i++];
      }
      if (i >= n) {
        if (diags == nullptr)
          throw ParseError(start_line, start_column, {},
                           "unterminated string literal", "L111",
                           "close the string with '\"'");
        diags->error("L111", {start_line, start_column},
                     "unterminated string literal", "close the string with '\"'");
        // Recovery: treat the rest of the input as the string's contents.
        out.push_back(Token{TokenType::Identifier, std::move(text), 0.0, true,
                            start_line, start_column});
        break;
      }
      ++i;  // closing quote
      out.push_back(Token{TokenType::Identifier, std::move(text), 0.0, true,
                          start_line, start_column});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < n && is_ident_char(input[i])) ++i;
      push(TokenType::Identifier, input.substr(start, i - start), start);
      continue;
    }
    const char next = i + 1 < n ? input[i + 1] : '\0';
    // '..' before number scanning, so "window 0..1" lexes the range operator
    // instead of a malformed ".." number.
    if (c == '.' && next == '.') {
      push(TokenType::DotDot, "..", i);
      i += 2;
      continue;
    }
    if (is_number_start(c, next)) {
      char* end = nullptr;
      const double value = std::strtod(input.c_str() + i, &end);
      if (end == input.c_str() + i) {
        fail(i, "L112", "malformed number", std::string(1, c), {});
        ++i;  // recovery: skip the character
        continue;
      }
      const std::size_t start = i;
      std::size_t stop = static_cast<std::size_t>(end - input.c_str());
      // "1..5" parses as "1." then ".5" under strtod; give the trailing dot
      // back so the range operator survives ("1" DotDot "5").
      if (stop > start && input[stop - 1] == '.' && stop < n && input[stop] == '.')
        --stop;
      i = stop;
      out.push_back(
          Token{TokenType::Number, {}, value, false, line, column(start)});
      continue;
    }
    switch (c) {
      case '(': push(TokenType::LParen, "(", i); break;
      case ')': push(TokenType::RParen, ")", i); break;
      case '{': push(TokenType::LBrace, "{", i); break;
      case '}': push(TokenType::RBrace, "}", i); break;
      case ',': push(TokenType::Comma, ",", i); break;
      case ';': push(TokenType::Semicolon, ";", i); break;
      case '+': push(TokenType::Plus, "+", i); break;
      case '*': push(TokenType::Star, "*", i); break;
      case '/': push(TokenType::Slash, "/", i); break;
      case '-':
        // '-' cannot start an identifier, so it is always the operator here
        // (is_ident_char admits it only inside a word).
        push(TokenType::Minus, "-", i);
        break;
      case '<':
        if (next == '=') {
          push(TokenType::LessEq, "<=", i);
          ++i;
        } else {
          push(TokenType::Less, "<", i);
        }
        break;
      case '>':
        if (next == '=') {
          push(TokenType::GreaterEq, ">=", i);
          ++i;
        } else {
          push(TokenType::Greater, ">", i);
        }
        break;
      case '=':
        if (next == '=') {
          push(TokenType::EqualsEquals, "==", i);
          ++i;
        } else {
          push(TokenType::Equals, "=", i);
        }
        break;
      case '!':
        if (next == '=') {
          push(TokenType::NotEquals, "!=", i);
          ++i;
        } else {
          fail(i, "L110", "unexpected character '!'", "!",
               "negation is spelled 'not'; inequality is '!='");
        }
        break;
      default:
        fail(i, "L110", std::string("unexpected character '") + c + "'",
             std::string(1, c),
             "identifiers use letters, digits, '_', '.', '-'; strings use double "
             "quotes");
        // Recovery: drop the character and continue scanning.
        break;
    }
    ++i;
  }
  out.push_back(Token{TokenType::End, {}, 0.0, false, line,
                      i >= line_start ? i - line_start + 1 : 1});
  return out;
}

}  // namespace

std::vector<Token> tokenize(const std::string& input) {
  return tokenize_impl(input, nullptr);
}

std::vector<Token> tokenize(const std::string& input, Diagnostics& diags) {
  return tokenize_impl(input, &diags);
}

const Token& TokenCursor::next() {
  const Token& t = tokens_[pos_];
  if (t.type != TokenType::End) ++pos_;
  return t;
}

std::string token_text(const Token& t) {
  if (t.type == TokenType::Number) return std::to_string(t.number);
  return t.text.empty() ? token_type_name(t.type) : t.text;
}

Token TokenCursor::expect(TokenType type, const std::string& what) {
  const Token& t = peek();
  if (t.type != type)
    throw ParseError(t.line, t.column, token_text(t),
                     "expected " + what + ", found '" + token_text(t) + "'", "L120");
  return next();
}

bool TokenCursor::accept(TokenType type) {
  if (peek().type != type) return false;
  next();
  return true;
}

bool TokenCursor::peek_word(const std::string& word) const {
  return peek().type == TokenType::Identifier && !peek().quoted &&
         peek().text == word;
}

bool TokenCursor::accept_word(const std::string& word) {
  if (!peek_word(word)) return false;
  next();
  return true;
}

Token TokenCursor::expect_identifier(const std::string& what) {
  return expect(TokenType::Identifier, what);
}

double TokenCursor::expect_number(const std::string& what) {
  return expect(TokenType::Number, what).number;
}

void TokenCursor::synchronize() {
  while (!at_end()) {
    if (peek().type == TokenType::RBrace) return;  // let the block parser close it
    if (next().type == TokenType::Semicolon) return;
  }
}

const char* token_type_name(TokenType t) {
  switch (t) {
    case TokenType::Identifier: return "identifier";
    case TokenType::Number: return "number";
    case TokenType::LParen: return "'('";
    case TokenType::RParen: return "')'";
    case TokenType::LBrace: return "'{'";
    case TokenType::RBrace: return "'}'";
    case TokenType::Comma: return "','";
    case TokenType::Semicolon: return "';'";
    case TokenType::Equals: return "'='";
    case TokenType::Plus: return "'+'";
    case TokenType::Minus: return "'-'";
    case TokenType::Star: return "'*'";
    case TokenType::Slash: return "'/'";
    case TokenType::Less: return "'<'";
    case TokenType::LessEq: return "'<='";
    case TokenType::Greater: return "'>'";
    case TokenType::GreaterEq: return "'>='";
    case TokenType::EqualsEquals: return "'=='";
    case TokenType::NotEquals: return "'!='";
    case TokenType::DotDot: return "'..'";
    case TokenType::End: return "end of input";
  }
  return "?";
}

}  // namespace fmtree::lang
