// Executing a compiled policy inside the simulation engines.
//
// The executor-callback contract: lang::apply_policy transforms the model —
// it drops every built-in inspection module and adds one InspectionModule
// per script calendar (in calendar order, detection probability 1, first_at
// from the calendar offset), so the engines' existing event machinery
// schedules and times the visits. At each inspection event the engine then
// calls, instead of its built-in threshold sweep:
//
//   * round_active(bound, module, now)   — seasonal-window gate; an
//     out-of-window visit is silently skipped (no cost, no round), only the
//     next one is scheduled;
//   * run_round(bound, module, now, host, state) — books nothing itself;
//     evaluates the calendar's rule statements once per target component
//     (in target-list order) and issues repairs through the engine-supplied
//     Host callbacks.
//
// The Host is the engine adapter (a lang::LambdaHost over engine-local
// state): phase/failed/under_repair reads, and repair(leaf) performing the
// engine's own repair bookkeeping — cost accrual, timed-repair scheduling
// or immediate renewal — exactly as its built-in inspection path does.
// run_round guards every repair (failed, already under repair, already
// repaired this visit, crew cap) before calling host.repair, so for the
// plain rule `if phase >= threshold then repair;` the callback sequence is
// identical, call for call, to the built-in sweep — which is what makes a
// scripted periodic policy bit-identical to the built-in one.
//
// Policy evaluation draws no random numbers and mutates only PolicyState,
// so determinism at any thread count / lane width is inherited unchanged.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "fmt/fmtree.hpp"
#include "lang/policy.hpp"

namespace fmtree::lang {

struct PolicyState;

/// A CompiledPolicy resolved against one concrete model: name references
/// bound to leaf indices, per-calendar target lists materialized, and
/// per-leaf threshold/phase-count caches for the VM. Immutable after
/// bind_policy; shared across threads freely. Holds pointers into the
/// compiled policy, which must outlive it.
struct BoundPolicy {
  const CompiledPolicy* compiled = nullptr;
  std::uint32_t num_leaves = 0;
  std::vector<std::uint32_t> ref_leaf;  ///< leaf index per CompiledPolicy::name_refs
  /// CSR target lists: calendar c visits calendar_targets[target_begin[c] ..
  /// target_begin[c + 1]) in that order.
  std::vector<std::uint32_t> target_begin;
  std::vector<std::uint32_t> calendar_targets;
  std::vector<double> leaf_threshold;  ///< per leaf, as VM doubles
  std::vector<double> leaf_phases;     ///< per leaf

  /// Remaining budget b at time `now` given what the trajectory has spent:
  /// initial + refill_amount * floor(now / refill_period) - spent. Lazy —
  /// refills need no simulation events.
  double budget_available(std::uint32_t b, double now,
                          const PolicyState& st) const;
};

/// Mutable per-trajectory policy execution state (embedded in the engines'
/// workspaces: one per scalar trajectory, one per batch lane).
struct PolicyState {
  std::vector<double> budget_spent;              ///< per budget
  std::vector<std::uint8_t> repaired_this_round; ///< per leaf
  std::uint32_t repairs_this_round = 0;
  std::vector<double> stack;  ///< VM operand stack, reused across evals

  /// Trajectory start: sizes the arrays and zeroes everything.
  void reset(const BoundPolicy& bp);
  /// Visit start: clears the per-round repair bookkeeping only.
  void begin_round();
};

/// Returns a copy of `model` with its inspection modules replaced by one
/// module per script calendar (the model transform described above).
/// Throws ModelErrors (L135/L136) when a target name does not resolve.
fmt::FaultMaintenanceTree apply_policy(const CompiledPolicy& policy,
                                       const fmt::FaultMaintenanceTree& model);

/// Resolves the compiled policy's name references against the (transformed)
/// model. Throws ModelErrors (L135/L136) on unknown names.
BoundPolicy bind_policy(const CompiledPolicy& policy,
                        const fmt::FaultMaintenanceTree& model);

/// Seasonal-window gate of calendar `cal` at time `now`.
inline bool round_active(const BoundPolicy& bp, std::size_t cal, double now) {
  const Calendar& c = bp.compiled->calendars[cal];
  if (!(c.window_cycle > 0)) return true;
  const double x = std::fmod(now, c.window_cycle);
  return x >= c.window_from && x < c.window_to;
}

/// Engine adapter assembled from four callables (see the Host contract in
/// the header comment). `phase` returns the leaf's current degradation
/// phase as a double (failed leaves sit at phases + 1 in both engines).
template <class PhaseFn, class FailedFn, class UnderRepairFn, class RepairFn>
struct LambdaHost {
  PhaseFn phase_of;
  FailedFn failed_of;
  UnderRepairFn under_repair_of;
  RepairFn repair_of;

  double phase(std::uint32_t leaf) const { return phase_of(leaf); }
  bool failed(std::uint32_t leaf) const { return failed_of(leaf); }
  bool under_repair(std::uint32_t leaf) const { return under_repair_of(leaf); }
  void repair(std::uint32_t leaf) const { repair_of(leaf); }
};

template <class PhaseFn, class FailedFn, class UnderRepairFn, class RepairFn>
LambdaHost<PhaseFn, FailedFn, UnderRepairFn, RepairFn> make_host(
    PhaseFn phase, FailedFn failed, UnderRepairFn under_repair, RepairFn repair) {
  return {std::move(phase), std::move(failed), std::move(under_repair),
          std::move(repair)};
}

namespace detail {

inline std::uint32_t leaf_of(std::uint32_t arg, std::uint32_t self,
                             const BoundPolicy& bp) {
  return arg == kSelfLeaf ? self : bp.ref_leaf[arg];
}

/// Evaluates code [begin, end) with `self` as the component under
/// evaluation. Postfix over a reused operand stack; booleans are 0/1 and
/// non-zero is truthy. No RNG, no engine mutation.
template <class Host>
double eval_code(const BoundPolicy& bp, const Host& host, const PolicyState& st,
                 std::uint32_t self, double now, std::uint32_t begin,
                 std::uint32_t end, std::vector<double>& stack) {
  const CompiledPolicy& p = *bp.compiled;
  stack.clear();
  const auto pop = [&stack] {
    const double v = stack.back();
    stack.pop_back();
    return v;
  };
  for (std::uint32_t i = begin; i < end; ++i) {
    const Instr in = p.code[i];
    switch (in.op) {
      case Op::PushConst: stack.push_back(p.consts[in.arg]); break;
      case Op::PushTime: stack.push_back(now); break;
      case Op::PushRepairs:
        stack.push_back(static_cast<double>(st.repairs_this_round));
        break;
      case Op::PushPhase:
        stack.push_back(host.phase(leaf_of(in.arg, self, bp)));
        break;
      case Op::PushThreshold:
        stack.push_back(bp.leaf_threshold[leaf_of(in.arg, self, bp)]);
        break;
      case Op::PushPhases:
        stack.push_back(bp.leaf_phases[leaf_of(in.arg, self, bp)]);
        break;
      case Op::PushFailed:
        stack.push_back(host.failed(leaf_of(in.arg, self, bp)) ? 1.0 : 0.0);
        break;
      case Op::PushRepaired:
        stack.push_back(
            st.repaired_this_round[leaf_of(in.arg, self, bp)] != 0 ? 1.0 : 0.0);
        break;
      case Op::PushBudget:
        stack.push_back(bp.budget_available(in.arg, now, st));
        break;
      case Op::Neg: stack.back() = -stack.back(); break;
      case Op::Not: stack.back() = stack.back() == 0.0 ? 1.0 : 0.0; break;
      case Op::Add: { const double b = pop(); stack.back() += b; break; }
      case Op::Sub: { const double b = pop(); stack.back() -= b; break; }
      case Op::Mul: { const double b = pop(); stack.back() *= b; break; }
      case Op::Div: { const double b = pop(); stack.back() /= b; break; }
      case Op::Mod: {
        const double b = pop();
        stack.back() = std::fmod(stack.back(), b);
        break;
      }
      case Op::Less: { const double b = pop(); stack.back() = stack.back() < b; break; }
      case Op::LessEq: { const double b = pop(); stack.back() = stack.back() <= b; break; }
      case Op::Greater: { const double b = pop(); stack.back() = stack.back() > b; break; }
      case Op::GreaterEq: { const double b = pop(); stack.back() = stack.back() >= b; break; }
      case Op::Equal: { const double b = pop(); stack.back() = stack.back() == b; break; }
      case Op::NotEqual: { const double b = pop(); stack.back() = stack.back() != b; break; }
      case Op::And: {
        const double b = pop();
        stack.back() = (stack.back() != 0.0 && b != 0.0) ? 1.0 : 0.0;
        break;
      }
      case Op::Or: {
        const double b = pop();
        stack.back() = (stack.back() != 0.0 || b != 0.0) ? 1.0 : 0.0;
        break;
      }
    }
  }
  return stack.empty() ? 0.0 : stack.back();
}

}  // namespace detail

/// Executes one in-window visit of calendar `cal` at time `now`: for each
/// target component in list order, runs the rule statements, issuing
/// guarded repairs and budget spends. Books no visit cost itself — the
/// engine accrues the InspectionModule cost exactly as for built-in rounds.
template <class Host>
void run_round(const BoundPolicy& bp, std::size_t cal, double now,
               const Host& host, PolicyState& st) {
  st.begin_round();
  const CompiledPolicy& p = *bp.compiled;
  const Calendar& c = p.calendars[cal];
  const std::uint32_t crew = p.crew;
  for (std::uint32_t k = bp.target_begin[cal]; k < bp.target_begin[cal + 1]; ++k) {
    const std::uint32_t self = bp.calendar_targets[k];
    for (std::uint32_t s = c.stmts_begin; s < c.stmts_end; ++s) {
      const Statement& stmt = p.statements[s];
      bool take_then = true;
      if (stmt.cond_end > stmt.cond_begin)
        take_then = detail::eval_code(bp, host, st, self, now, stmt.cond_begin,
                                      stmt.cond_end, st.stack) != 0.0;
      const std::uint32_t a0 = take_then ? stmt.then_begin : stmt.else_begin;
      const std::uint32_t a1 = take_then ? stmt.then_end : stmt.else_end;
      for (std::uint32_t a = a0; a < a1; ++a) {
        const Action& act = p.actions[a];
        switch (act.kind) {
          case Action::Kind::RepairSelf:
          case Action::Kind::RepairLeaf: {
            const std::uint32_t leaf = act.kind == Action::Kind::RepairSelf
                                           ? self
                                           : bp.ref_leaf[act.leaf_slot];
            // Mirrors the built-in sweep's guards: failed components need
            // corrective maintenance, busy crews finish first; plus the
            // script-level idempotence and crew-capacity guards.
            if (host.failed(leaf) || host.under_repair(leaf)) break;
            if (st.repaired_this_round[leaf] != 0) break;
            if (crew != 0 && st.repairs_this_round >= crew) break;
            host.repair(leaf);
            st.repaired_this_round[leaf] = 1;
            ++st.repairs_this_round;
            break;
          }
          case Action::Kind::Spend: {
            const double amount =
                detail::eval_code(bp, host, st, self, now, act.amount_begin,
                                  act.amount_end, st.stack);
            st.budget_spent[act.budget] += amount;
            break;
          }
        }
      }
    }
  }
}

}  // namespace fmtree::lang
