// The maintenance-policy language (.mpl) and its compiled form.
//
// A script describes a maintenance scenario for a fault maintenance tree:
//
//   policy "quarterly-cbm";
//
//   budget works = 600 refill 600 every 1;  # monetary pool, refilled yearly
//   crew 2;                                 # at most 2 repairs per visit
//
//   calendar quarterly every 0.25 offset 0.25 cost 35;
//   calendar summer every 0.25 cost 20 window 0.25..0.75 of 1
//     targets lipping, joint_batter;
//
//   rule quarterly {
//     if phase >= threshold then repair;
//     if repairs > 0 and phase >= threshold - 1 then repair;  # opportunistic
//   }
//
// Each `calendar` is a periodic site visit (optionally restricted to a
// seasonal window of a repeating cycle); its `rule` block runs once per
// target component per visit, with `phase`/`threshold`/`phases`/`failed`/
// `repaired` referring to the component under evaluation, `repairs` to the
// actions already taken this visit, and `phase(name)`-style functions
// reading any named component. Actions: `repair` (the current component),
// `repair(name)`, and `spend(budget, amount)`.
//
// Scripts compile to a CompiledPolicy — flat postfix instruction code plus
// calendar/budget/action tables, no AST — which the simulation engines
// execute at inspection events (see lang/runtime.hpp). The compiled form
// also carries the policy's cache fingerprint ("fmtree.policy/v1" over the
// compiled tables, not the source text), so reformatting a script preserves
// result-cache keys while any semantic change busts them.
//
// Stable diagnostic codes (DESIGN.md, "Policy language"):
//   L110-L112  lexical     (bad character, unterminated string, bad number)
//   L120-L122  syntax      (unexpected token, unknown statement, bad expression)
//   L130-L136  semantic    (unknown calendar/budget, duplicates, bad values,
//                           unknown component at bind time)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/diagnostics.hpp"
#include "util/fingerprint.hpp"

namespace fmtree::lang {

/// Postfix VM opcodes. Operands are doubles; booleans are 0.0 / 1.0 and any
/// non-zero value is truthy. Leaf-reading ops take kSelfLeaf (the component
/// the rule is evaluating) or an index into CompiledPolicy::name_refs.
enum class Op : std::uint8_t {
  PushConst,      ///< arg = index into consts
  PushTime,       ///< current simulation time
  PushRepairs,    ///< repairs performed so far this visit
  PushPhase,      ///< degradation phase of a leaf (failed = phases + 1)
  PushThreshold,  ///< inspection threshold phase of a leaf
  PushPhases,     ///< number of degradation phases of a leaf
  PushFailed,     ///< 1.0 iff the leaf has failed
  PushRepaired,   ///< 1.0 iff the leaf was repaired earlier this visit
  PushBudget,     ///< arg = budget index; remaining budget at current time
  Neg,
  Add,
  Sub,
  Mul,
  Div,
  Mod,  ///< fmod(a, b) — the `mod(a, b)` builtin
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Equal,
  NotEqual,
  And,
  Or,
  Not,
};

/// Sentinel `arg` of leaf-reading ops: the component under evaluation.
inline constexpr std::uint32_t kSelfLeaf = 0xffffffffu;

struct Instr {
  Op op = Op::PushConst;
  std::uint32_t arg = 0;
};

/// A by-name reference to a model component, resolved at bind time
/// (lang::bind_policy). The location points at the name in the script for
/// bind-time diagnostics.
struct NameRef {
  std::string name;
  SourceLocation loc;
};

/// One action of a rule statement.
struct Action {
  enum class Kind : std::uint8_t {
    RepairSelf,  ///< `repair` — repair the component under evaluation
    RepairLeaf,  ///< `repair(name)` — leaf_slot indexes name_refs
    Spend,       ///< `spend(budget, amount)` — amount is a code range
  };
  Kind kind = Kind::RepairSelf;
  std::uint32_t leaf_slot = 0;
  std::uint32_t budget = 0;
  std::uint32_t amount_begin = 0, amount_end = 0;  ///< into code
};

/// One rule statement: `if cond then actions [else actions];` or a bare
/// action list (cond range empty). Ranges index CompiledPolicy::code and
/// CompiledPolicy::actions.
struct Statement {
  std::uint32_t cond_begin = 0, cond_end = 0;
  std::uint32_t then_begin = 0, then_end = 0;
  std::uint32_t else_begin = 0, else_end = 0;
};

/// One periodic site visit. Compiles to one fmt::InspectionModule (in
/// calendar order, so inspection-module index == calendar index) via
/// lang::apply_policy; the engines run its statements instead of the
/// built-in threshold sweep.
struct Calendar {
  std::string name;
  double period = 1.0;
  double first_at = -1.0;  ///< `offset`; negative = use the period
  double cost = 0.0;       ///< cost per (in-window) visit
  /// Seasonal window: the visit happens only when fmod(time, window_cycle)
  /// lies in [window_from, window_to). window_cycle <= 0 = no window.
  double window_from = 0.0, window_to = 0.0, window_cycle = 0.0;
  bool targets_all = true;  ///< all inspectable components, ascending order
  std::vector<std::uint32_t> target_slots;  ///< into name_refs (unless all)
  std::uint32_t stmts_begin = 0, stmts_end = 0;  ///< into statements
};

/// A named spending counter. Available at time t =
/// initial + refill_amount * floor(t / refill_period) - spent so far; the
/// refill needs no simulation events. Budgets only constrain what the
/// script makes them constrain (via `budget(name)` guards).
struct Budget {
  std::string name;
  double initial = 0.0;
  double refill_amount = 0.0;
  double refill_period = 0.0;  ///< <= 0 = never refilled
};

/// A compiled policy script: flat tables, no AST, immutable after
/// compilation. Shared across threads freely; all mutable execution state
/// lives in lang::PolicyState.
struct CompiledPolicy {
  /// Display label from `policy "...";` — used for sweep-job labels, and
  /// deliberately excluded from the fingerprint (it affects no result bit).
  std::string name = "scripted";
  std::vector<Calendar> calendars;
  std::vector<Budget> budgets;
  std::uint32_t crew = 0;  ///< max repairs per visit; 0 = unlimited
  std::vector<Instr> code;
  std::vector<double> consts;
  std::vector<Statement> statements;
  std::vector<Action> actions;
  std::vector<NameRef> name_refs;
  /// "fmtree.policy/v1" digest of the compiled tables above (minus `name`),
  /// computed by compile_policy. Folded into the result-cache settings
  /// fingerprint, so scripted runs never share cache entries with built-in
  /// policies and semantically equal scripts share them regardless of
  /// formatting.
  Fingerprint fingerprint;
};

/// Compiles a script, collecting every problem into `diags` (error-recovery
/// parse: statements re-synchronize at ';'). Returns the compiled policy
/// only when no errors were recorded; warnings alone do not fail it.
std::optional<CompiledPolicy> compile_policy(const std::string& source,
                                             Diagnostics& diags);

/// Throwing convenience: compiles or throws ParseErrors with the full
/// diagnostic list of the pass.
CompiledPolicy compile_policy(const std::string& source);

}  // namespace fmtree::lang
