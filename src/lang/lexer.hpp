// Tokenizer of the maintenance-policy language (.mpl scripts).
//
// The policy DSL needs a richer token set than the .ft/.fmt model formats
// (comparison operators, braces, arithmetic, the '..' window range), so it
// carries its own lexer, built on the same conventions as ft::tokenize:
// '#' comments to end of line, quoted strings become identifiers (with the
// `quoted` flag set so keywords never match them), and a shared
// strict/recovery scanner — lexical problems throw ParseError without a
// sink, or are recorded (codes L110-L112) and skipped with one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/diagnostics.hpp"

namespace fmtree::lang {

enum class TokenType {
  Identifier,  // bare word or quoted string (quotes stripped, `quoted` set)
  Number,      // double literal
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semicolon,
  Equals,
  Plus,
  Minus,
  Star,
  Slash,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  EqualsEquals,
  NotEquals,
  DotDot,  // window range: 0.25..0.75
  End,
};

struct Token {
  TokenType type = TokenType::End;
  std::string text;     // identifier text
  double number = 0.0;  // numeric value for Number
  bool quoted = false;  // identifier came from a quoted string
  std::size_t line = 1;
  std::size_t column = 1;  // 1-based column of the token's first character
};

/// Tokenizes the whole input. Throws ParseError (codes L110-L112) on bad
/// characters, unterminated strings or malformed numbers. The final token is
/// always TokenType::End.
std::vector<Token> tokenize(const std::string& input);

/// Error-recovery tokenization: lexical problems are recorded in `diags`
/// and skipped instead of thrown, so one pass surfaces every bad character.
/// Never throws on malformed input.
std::vector<Token> tokenize(const std::string& input, Diagnostics& diags);

/// Cursor over a token stream with convenience expectations (throwing
/// ParseError with the L120 syntax code on mismatch).
class TokenCursor {
public:
  explicit TokenCursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& peek() const { return tokens_[pos_]; }
  const Token& next();
  bool at_end() const { return peek().type == TokenType::End; }
  std::size_t line() const { return peek().line; }
  std::size_t column() const { return peek().column; }

  /// Consumes and returns a token of the given type, or throws ParseError.
  Token expect(TokenType type, const std::string& what);
  /// Consumes the next token if it matches; returns whether it did.
  bool accept(TokenType type);
  /// True iff the next token is the bare (unquoted) keyword `word`.
  bool peek_word(const std::string& word) const;
  /// Consumes a bare (unquoted) identifier equal to `word` if present.
  bool accept_word(const std::string& word);
  /// Consumes and returns an identifier (bare or quoted), or throws.
  Token expect_identifier(const std::string& what);
  /// Consumes and returns a number, or throws.
  double expect_number(const std::string& what);

  /// Panic-mode recovery: skips past the next ';' (or stops before a '}',
  /// which closes the enclosing rule block, or at end of input) so parsing
  /// can resume at the following statement.
  void synchronize();

private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

const char* token_type_name(TokenType t);

/// Display text of a token, for diagnostics.
std::string token_text(const Token& t);

}  // namespace fmtree::lang
