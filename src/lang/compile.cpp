#include <cmath>
#include <utility>

#include "lang/lexer.hpp"
#include "lang/policy.hpp"
#include "util/error.hpp"

namespace fmtree::lang {

namespace {

/// Recovery-style recursive-descent parser emitting straight into the flat
/// CompiledPolicy tables (postfix code, no AST). Each top-level statement
/// and each rule-body statement is parsed under its own ParseError boundary:
/// on failure one diagnostic is recorded and the cursor re-synchronizes at
/// the next ';' (or the enclosing '}'), so a single pass reports every
/// problem without cascading follow-up errors.
class Compiler {
public:
  Compiler(std::vector<Token> tokens, Diagnostics& diags)
      : cur_(std::move(tokens)), diags_(diags) {}

  std::optional<CompiledPolicy> run() {
    while (!cur_.at_end()) {
      try {
        parse_top();
      } catch (const ParseError& e) {
        report(e);
        cur_.synchronize();
        if (cur_.peek().type == TokenType::RBrace) cur_.next();  // stray '}'
      }
    }
    for (std::size_t c = 0; c < out_.calendars.size(); ++c) {
      if (!rule_seen_[c])
        diags_.warning("L134", calendar_loc_[c],
                       "calendar '" + out_.calendars[c].name + "' has no rule",
                       "add 'rule " + out_.calendars[c].name +
                           " { if phase >= threshold then repair; }'");
    }
    if (diags_.has_errors()) return std::nullopt;
    out_.fingerprint = fingerprint(out_);
    return std::move(out_);
  }

  static Fingerprint fingerprint(const CompiledPolicy& p) {
    StreamHasher h;
    h.tag("fmtree.policy/v1");
    h.tag("crew").u32(p.crew);
    h.tag("budgets").u64(p.budgets.size());
    for (const Budget& b : p.budgets) {
      h.str(b.name).f64(b.initial).f64(b.refill_amount).f64(b.refill_period);
    }
    h.tag("consts").u64(p.consts.size());
    for (double c : p.consts) h.f64(c);
    h.tag("code").u64(p.code.size());
    for (const Instr& in : p.code)
      h.u32(static_cast<std::uint32_t>(in.op)).u32(in.arg);
    h.tag("statements").u64(p.statements.size());
    for (const Statement& s : p.statements) {
      h.u32(s.cond_begin).u32(s.cond_end);
      h.u32(s.then_begin).u32(s.then_end);
      h.u32(s.else_begin).u32(s.else_end);
    }
    h.tag("actions").u64(p.actions.size());
    for (const Action& a : p.actions) {
      h.u32(static_cast<std::uint32_t>(a.kind));
      h.u32(a.leaf_slot).u32(a.budget).u32(a.amount_begin).u32(a.amount_end);
    }
    h.tag("refs").u64(p.name_refs.size());
    for (const NameRef& r : p.name_refs) h.str(r.name);
    h.tag("calendars").u64(p.calendars.size());
    for (const Calendar& c : p.calendars) {
      h.str(c.name);
      h.f64(c.period).f64(c.first_at).f64(c.cost);
      h.f64(c.window_from).f64(c.window_to).f64(c.window_cycle);
      h.boolean(c.targets_all);
      h.u64(c.target_slots.size());
      for (std::uint32_t s : c.target_slots) h.u32(s);
      h.u32(c.stmts_begin).u32(c.stmts_end);
    }
    return h.digest();
  }

private:
  // ---- Error plumbing -------------------------------------------------------

  void report(const ParseError& e) {
    diags_.error(e.code(), {e.line(), e.column()}, e.message(), e.hint(), e.token());
  }

  [[noreturn]] void fail(const Token& at, std::string code,
                         const std::string& message, std::string hint = {}) {
    throw ParseError(at.line, at.column, token_text(at), message, std::move(code),
                     std::move(hint));
  }

  void expect_word(const std::string& word) {
    if (!cur_.accept_word(word))
      fail(cur_.peek(), "L120",
           "expected '" + word + "', found '" + token_text(cur_.peek()) + "'");
  }

  // ---- Top-level statements -------------------------------------------------

  void parse_top() {
    const Token at = cur_.peek();
    if (cur_.accept_word("policy")) {
      parse_policy_decl(at);
    } else if (cur_.accept_word("budget")) {
      parse_budget_decl();
    } else if (cur_.accept_word("crew")) {
      parse_crew_decl();
    } else if (cur_.accept_word("calendar")) {
      parse_calendar_decl();
    } else if (cur_.accept_word("rule")) {
      parse_rule_decl();
    } else if (cur_.accept(TokenType::Semicolon)) {
      // Stray ';' — harmless, skip.
    } else {
      fail(at, "L121",
           "expected a statement, found '" + token_text(at) + "'",
           "statements are 'policy', 'budget', 'crew', 'calendar' and 'rule'");
    }
  }

  void parse_policy_decl(const Token& at) {
    const Token name = cur_.expect_identifier("the policy name");
    cur_.expect(TokenType::Semicolon, "';'");
    if (policy_named_)
      fail(at, "L131", "duplicate 'policy' declaration",
           "a script names its policy at most once");
    policy_named_ = true;
    out_.name = name.text;
  }

  void parse_budget_decl() {
    const Token name = cur_.expect_identifier("the budget name");
    if (budget_index(name.text))
      fail(name, "L131", "duplicate budget '" + name.text + "'");
    cur_.expect(TokenType::Equals, "'='");
    Budget b;
    b.name = name.text;
    b.initial = cur_.expect_number("the initial amount");
    if (cur_.accept_word("refill")) {
      b.refill_amount = cur_.expect_number("the refill amount");
      expect_word("every");
      b.refill_period = cur_.expect_number("the refill period");
      if (!(b.refill_period > 0))
        fail(name, "L133", "refill period of budget '" + name.text +
                               "' must be positive");
      if (b.refill_amount < 0)
        fail(name, "L133",
             "refill amount of budget '" + name.text + "' must be >= 0");
    }
    cur_.expect(TokenType::Semicolon, "';'");
    if (b.initial < 0)
      fail(name, "L133", "initial amount of budget '" + name.text +
                             "' must be >= 0");
    out_.budgets.push_back(std::move(b));
  }

  void parse_crew_decl() {
    const Token at = cur_.peek();
    const double v = cur_.expect_number("the crew size");
    cur_.expect(TokenType::Semicolon, "';'");
    if (!(v >= 0) || v != std::floor(v) || v > 1e6)
      fail(at, "L133", "crew size must be a non-negative integer",
           "0 means unlimited repairs per visit");
    out_.crew = static_cast<std::uint32_t>(v);
  }

  void parse_calendar_decl() {
    const Token name = cur_.expect_identifier("the calendar name");
    if (calendar_index(name.text))
      fail(name, "L131", "duplicate calendar '" + name.text + "'");
    Calendar c;
    c.name = name.text;
    bool has_period = false, has_offset = false, has_cost = false;
    bool has_window = false, has_targets = false;
    const auto once = [&](bool& seen, const Token& at, const char* clause) {
      if (seen)
        fail(at, "L131", std::string("duplicate '") + clause +
                             "' clause in calendar '" + c.name + "'");
      seen = true;
    };
    while (cur_.peek().type != TokenType::Semicolon && !cur_.at_end()) {
      const Token at = cur_.peek();
      if (cur_.accept_word("every")) {
        once(has_period, at, "every");
        c.period = cur_.expect_number("the period");
      } else if (cur_.accept_word("offset")) {
        once(has_offset, at, "offset");
        c.first_at = cur_.expect_number("the first-visit offset");
      } else if (cur_.accept_word("cost")) {
        once(has_cost, at, "cost");
        c.cost = cur_.expect_number("the per-visit cost");
      } else if (cur_.accept_word("window")) {
        once(has_window, at, "window");
        c.window_from = cur_.expect_number("the window start");
        cur_.expect(TokenType::DotDot, "'..'");
        c.window_to = cur_.expect_number("the window end");
        expect_word("of");
        c.window_cycle = cur_.expect_number("the window cycle length");
      } else if (cur_.accept_word("targets")) {
        once(has_targets, at, "targets");
        if (cur_.accept_word("all")) {
          c.targets_all = true;
        } else {
          c.targets_all = false;
          c.target_slots.push_back(add_ref(cur_.expect_identifier("a component name")));
          while (cur_.accept(TokenType::Comma))
            c.target_slots.push_back(
                add_ref(cur_.expect_identifier("a component name")));
        }
      } else {
        fail(at, "L120",
             "expected a calendar clause, found '" + token_text(at) + "'",
             "clauses are 'every', 'offset', 'cost', 'window' and 'targets'");
      }
    }
    cur_.expect(TokenType::Semicolon, "';'");
    if (!has_period)
      fail(name, "L133", "calendar '" + c.name + "' needs 'every <period>'");
    if (!(c.period > 0))
      fail(name, "L133", "period of calendar '" + c.name + "' must be positive");
    if (has_offset && c.first_at < 0)
      fail(name, "L133", "offset of calendar '" + c.name + "' must be >= 0");
    if (c.cost < 0)
      fail(name, "L133", "cost of calendar '" + c.name + "' must be >= 0");
    if (has_window &&
        !(c.window_cycle > 0 && c.window_from >= 0 &&
          c.window_from < c.window_to && c.window_to <= c.window_cycle))
      fail(name, "L133",
           "window of calendar '" + c.name +
               "' needs 0 <= from < to <= cycle and a positive cycle");
    calendar_loc_.push_back({name.line, name.column});
    rule_seen_.push_back(false);
    out_.calendars.push_back(std::move(c));
  }

  void parse_rule_decl() {
    const Token name = cur_.expect_identifier("the calendar name");
    const std::optional<std::size_t> cal = calendar_index(name.text);
    if (!cal)
      report(ParseError(name.line, name.column, name.text,
                        "rule for unknown calendar '" + name.text + "'", "L130",
                        "declare the calendar before its rule"));
    else if (rule_seen_[*cal])
      report(ParseError(name.line, name.column, name.text,
                        "duplicate rule for calendar '" + name.text + "'", "L131",
                        "merge the statements into one rule block"));
    cur_.expect(TokenType::LBrace, "'{'");
    const auto begin = static_cast<std::uint32_t>(out_.statements.size());
    while (!cur_.accept(TokenType::RBrace)) {
      if (cur_.at_end()) fail(cur_.peek(), "L120", "expected '}'");
      try {
        parse_rule_statement();
      } catch (const ParseError& e) {
        report(e);
        cur_.synchronize();
      }
    }
    const auto end = static_cast<std::uint32_t>(out_.statements.size());
    if (cal && !rule_seen_[*cal]) {
      rule_seen_[*cal] = true;
      out_.calendars[*cal].stmts_begin = begin;
      out_.calendars[*cal].stmts_end = end;
    }
  }

  // ---- Rule statements and actions ------------------------------------------

  void parse_rule_statement() {
    Statement s;
    if (cur_.accept_word("if")) {
      s.cond_begin = code_pos();
      parse_expr();
      s.cond_end = code_pos();
      expect_word("then");
      s.then_begin = action_pos();
      parse_actions();
      s.then_end = action_pos();
      if (cur_.accept_word("else")) {
        s.else_begin = action_pos();
        parse_actions();
        s.else_end = action_pos();
      }
    } else {
      s.then_begin = action_pos();
      parse_actions();
      s.then_end = action_pos();
    }
    cur_.expect(TokenType::Semicolon, "';'");
    out_.statements.push_back(s);
  }

  void parse_actions() {
    parse_action();
    while (cur_.accept(TokenType::Comma)) parse_action();
  }

  void parse_action() {
    const Token at = cur_.peek();
    if (cur_.accept_word("repair")) {
      Action a;
      if (cur_.accept(TokenType::LParen)) {
        a.kind = Action::Kind::RepairLeaf;
        a.leaf_slot = add_ref(cur_.expect_identifier("a component name"));
        cur_.expect(TokenType::RParen, "')'");
      } else {
        a.kind = Action::Kind::RepairSelf;
      }
      out_.actions.push_back(a);
    } else if (cur_.accept_word("spend")) {
      Action a;
      a.kind = Action::Kind::Spend;
      cur_.expect(TokenType::LParen, "'('");
      const Token budget = cur_.expect_identifier("a budget name");
      const std::optional<std::size_t> b = budget_index(budget.text);
      if (!b)
        fail(budget, "L132", "unknown budget '" + budget.text + "'",
             "declare it with 'budget " + budget.text + " = <amount>;'");
      a.budget = static_cast<std::uint32_t>(*b);
      cur_.expect(TokenType::Comma, "','");
      a.amount_begin = code_pos();
      parse_expr();
      a.amount_end = code_pos();
      cur_.expect(TokenType::RParen, "')'");
      out_.actions.push_back(a);
    } else {
      fail(at, "L122",
           "expected an action, found '" + token_text(at) + "'",
           "actions are 'repair', 'repair(<component>)' and "
           "'spend(<budget>, <amount>)'");
    }
  }

  // ---- Expressions (postfix emission) ---------------------------------------

  void parse_expr() { parse_or(); }

  void parse_or() {
    parse_and();
    while (cur_.accept_word("or")) {
      parse_and();
      emit(Op::Or);
    }
  }

  void parse_and() {
    parse_not();
    while (cur_.accept_word("and")) {
      parse_not();
      emit(Op::And);
    }
  }

  void parse_not() {
    if (cur_.accept_word("not")) {
      parse_not();
      emit(Op::Not);
    } else {
      parse_cmp();
    }
  }

  void parse_cmp() {
    parse_add();
    Op op;
    switch (cur_.peek().type) {
      case TokenType::Less: op = Op::Less; break;
      case TokenType::LessEq: op = Op::LessEq; break;
      case TokenType::Greater: op = Op::Greater; break;
      case TokenType::GreaterEq: op = Op::GreaterEq; break;
      case TokenType::EqualsEquals: op = Op::Equal; break;
      case TokenType::NotEquals: op = Op::NotEqual; break;
      default: return;
    }
    cur_.next();
    parse_add();
    emit(op);
  }

  void parse_add() {
    parse_mul();
    while (true) {
      if (cur_.accept(TokenType::Plus)) {
        parse_mul();
        emit(Op::Add);
      } else if (cur_.accept(TokenType::Minus)) {
        parse_mul();
        emit(Op::Sub);
      } else {
        return;
      }
    }
  }

  void parse_mul() {
    parse_unary();
    while (true) {
      if (cur_.accept(TokenType::Star)) {
        parse_unary();
        emit(Op::Mul);
      } else if (cur_.accept(TokenType::Slash)) {
        parse_unary();
        emit(Op::Div);
      } else {
        return;
      }
    }
  }

  void parse_unary() {
    if (cur_.accept(TokenType::Minus)) {
      parse_unary();
      emit(Op::Neg);
    } else {
      parse_primary();
    }
  }

  void parse_primary() {
    const Token at = cur_.peek();
    if (at.type == TokenType::Number) {
      cur_.next();
      emit_const(at.number);
      return;
    }
    if (cur_.accept(TokenType::LParen)) {
      parse_expr();
      cur_.expect(TokenType::RParen, "')'");
      return;
    }
    if (at.type != TokenType::Identifier || at.quoted)
      fail(at, "L122",
           "expected an expression, found '" + token_text(at) + "'");
    cur_.next();
    const std::string& word = at.text;
    if (word == "true") {
      emit_const(1.0);
    } else if (word == "false") {
      emit_const(0.0);
    } else if (word == "time") {
      emit(Op::PushTime);
    } else if (word == "repairs") {
      emit(Op::PushRepairs);
    } else if (word == "phase") {
      emit(Op::PushPhase, leaf_arg());
    } else if (word == "threshold") {
      emit(Op::PushThreshold, leaf_arg());
    } else if (word == "phases") {
      emit(Op::PushPhases, leaf_arg());
    } else if (word == "failed") {
      emit(Op::PushFailed, leaf_arg());
    } else if (word == "repaired") {
      emit(Op::PushRepaired, leaf_arg());
    } else if (word == "budget") {
      cur_.expect(TokenType::LParen, "'('");
      const Token budget = cur_.expect_identifier("a budget name");
      const std::optional<std::size_t> b = budget_index(budget.text);
      if (!b)
        fail(budget, "L132", "unknown budget '" + budget.text + "'",
             "declare it with 'budget " + budget.text + " = <amount>;'");
      cur_.expect(TokenType::RParen, "')'");
      emit(Op::PushBudget, static_cast<std::uint32_t>(*b));
    } else if (word == "mod") {
      cur_.expect(TokenType::LParen, "'('");
      parse_expr();
      cur_.expect(TokenType::Comma, "','");
      parse_expr();
      cur_.expect(TokenType::RParen, "')'");
      emit(Op::Mod);
    } else {
      fail(at, "L122", "unknown name '" + word + "' in expression",
           "component state reads as phase(<name>), threshold(<name>), "
           "phases(<name>), failed(<name>), repaired(<name>)");
    }
  }

  /// Optional '(name)' after a component-state keyword: a named component,
  /// or the one under evaluation when absent.
  std::uint32_t leaf_arg() {
    if (!cur_.accept(TokenType::LParen)) return kSelfLeaf;
    const std::uint32_t slot = add_ref(cur_.expect_identifier("a component name"));
    cur_.expect(TokenType::RParen, "')'");
    return slot;
  }

  // ---- Table plumbing -------------------------------------------------------

  void emit(Op op, std::uint32_t arg = 0) { out_.code.push_back(Instr{op, arg}); }

  void emit_const(double v) {
    out_.consts.push_back(v);
    emit(Op::PushConst, static_cast<std::uint32_t>(out_.consts.size() - 1));
  }

  std::uint32_t code_pos() const {
    return static_cast<std::uint32_t>(out_.code.size());
  }
  std::uint32_t action_pos() const {
    return static_cast<std::uint32_t>(out_.actions.size());
  }

  std::uint32_t add_ref(const Token& name) {
    out_.name_refs.push_back(NameRef{name.text, {name.line, name.column}});
    return static_cast<std::uint32_t>(out_.name_refs.size() - 1);
  }

  std::optional<std::size_t> calendar_index(const std::string& name) const {
    for (std::size_t i = 0; i < out_.calendars.size(); ++i)
      if (out_.calendars[i].name == name) return i;
    return std::nullopt;
  }

  std::optional<std::size_t> budget_index(const std::string& name) const {
    for (std::size_t i = 0; i < out_.budgets.size(); ++i)
      if (out_.budgets[i].name == name) return i;
    return std::nullopt;
  }

  TokenCursor cur_;
  Diagnostics& diags_;
  CompiledPolicy out_;
  bool policy_named_ = false;
  std::vector<SourceLocation> calendar_loc_;  // parallel to out_.calendars
  std::vector<bool> rule_seen_;               // parallel to out_.calendars
};

}  // namespace

std::optional<CompiledPolicy> compile_policy(const std::string& source,
                                             Diagnostics& diags) {
  std::vector<Token> tokens = tokenize(source, diags);
  return Compiler(std::move(tokens), diags).run();
}

CompiledPolicy compile_policy(const std::string& source) {
  Diagnostics diags;
  std::optional<CompiledPolicy> policy = compile_policy(source, diags);
  if (!policy) throw ParseErrors(diags.all());
  return std::move(*policy);
}

}  // namespace fmtree::lang
