// A17 — Tornado sensitivity of the system failure rate to each mode's mean
// lifetime (+/-25%), under the current policy. Identifies which expert
// estimates the study's conclusions actually depend on — the practical
// question behind the paper's "faithfulness depends on parameter accuracy"
// remark.
#include <algorithm>
#include <cmath>

#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

namespace {

void scale_mean(eijoint::ModeParams& mode, double factor) {
  mode.mean_ttf *= factor;
}

}  // namespace

int main() {
  bench::header("A17", "Tornado: failure-rate sensitivity to mode lifetimes (+/-25%)",
                "which parameter estimates the conclusions depend on");
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);
  const auto analyze_params = [&](const eijoint::EiJointParameters& p) {
    return smc::analyze(eijoint::build_ei_joint(p, eijoint::current_policy()), settings)
        .failures_per_year.point;
  };
  const double base = analyze_params(eijoint::EiJointParameters::defaults());
  std::cout << "baseline failures/yr: " << cell(base, 4) << "\n\n";

  using Mutator = eijoint::ModeParams eijoint::EiJointParameters::*;
  const std::vector<std::pair<const char*, Mutator>> knobs{
      {"lipping", &eijoint::EiJointParameters::lipping},
      {"contamination", &eijoint::EiJointParameters::contamination},
      {"endpost_wear", &eijoint::EiJointParameters::endpost_wear},
      {"impact_damage", &eijoint::EiJointParameters::impact_damage},
      {"bolt", &eijoint::EiJointParameters::bolt},
      {"fishplate_crack", &eijoint::EiJointParameters::fishplate},
      {"glue_degradation", &eijoint::EiJointParameters::glue},
      {"joint_batter", &eijoint::EiJointParameters::batter},
  };

  struct Row {
    std::string mode;
    double low, high, swing;
  };
  std::vector<Row> rows;
  for (const auto& [label, member] : knobs) {
    eijoint::EiJointParameters shorter = eijoint::EiJointParameters::defaults();
    scale_mean(shorter.*member, 0.75);
    eijoint::EiJointParameters longer = eijoint::EiJointParameters::defaults();
    scale_mean(longer.*member, 1.25);
    const double low = analyze_params(shorter);   // shorter life -> more failures
    const double high = analyze_params(longer);
    rows.push_back(Row{label, low, high, std::fabs(low - high)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.swing > b.swing; });

  TextTable t({"mode lifetime +/-25%", "failures/yr @ -25%", "@ +25%", "swing"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right});
  for (const Row& r : rows)
    t.add_row({r.mode, cell(r.low, 4), cell(r.high, 4), cell(r.swing, 4)});
  t.print(std::cout);

  // The memoryless impact mode should dominate the tornado: inspections
  // cannot mitigate it, so its rate feeds straight into the system rate.
  const bool impact_on_top = rows.front().mode == "impact_damage" ||
                             rows.front().mode == "contamination";
  std::cout << "\nShape check (an inspection-resistant mode tops the tornado): "
            << (impact_on_top ? "PASS" : "FAIL") << "\n";
  return impact_on_top ? 0 : 1;
}
