// A10 — Ablation: number of degradation phases at fixed mean lifetime.
// Phased (Erlang) degradation is what makes condition-based maintenance
// work: with one exponential phase there is no observable precursor and
// inspections cannot reduce that mode's failures. More phases concentrate
// the lifetime around its mean and widen the warning window.
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

int main() {
  bench::header("A10", "Ablation: Erlang phase count of 'contamination'",
                "design decision 1 in DESIGN.md: phased degradation, not "
                "exponential");
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  TextTable t({"phases", "threshold", "contamination failures/yr",
               "contamination repairs/yr", "system failures/yr"});
  t.set_alignment({Align::Right, Align::Right, Align::Right, Align::Right,
                   Align::Right});
  std::vector<double> mode_rates;
  for (int phases : {1, 2, 3, 6, 12}) {
    eijoint::EiJointParameters p = eijoint::EiJointParameters::defaults();
    p.contamination.phases = phases;
    // Keep the threshold at ~2/3 of the way through degradation; for a
    // single phase there is no intermediate state at all.
    p.contamination.threshold = phases == 1 ? 2 : (2 * phases + 2) / 3;
    const auto model = eijoint::build_ei_joint(p, eijoint::current_policy());
    const smc::KpiReport k = smc::analyze(model, settings);
    const std::size_t idx = model.ebe_index(*model.find("contamination"));
    const double mode_rate = k.failures_per_leaf[idx] / settings.horizon;
    mode_rates.push_back(mode_rate);
    t.add_row({cell(phases), cell(p.contamination.threshold), cell(mode_rate, 4),
               cell(k.repairs_per_leaf[idx] / settings.horizon, 2),
               cell(k.failures_per_year.point, 4)});
  }
  t.print(std::cout);

  const bool exponential_defeats_inspection = mode_rates.front() > 5 * mode_rates.back();
  std::cout << "\nShape check (1 phase defeats inspections: mode failure rate "
               ">> 12-phase rate): "
            << (exponential_defeats_inspection ? "PASS" : "FAIL") << "\n";
  return exponential_defeats_inspection ? 0 : 1;
}
