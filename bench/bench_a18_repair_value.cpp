// A18 — Value of each repair action (one-at-a-time knockouts, common random
// numbers): for each EI-joint failure mode, what does keeping it under
// inspection buy in failures and cost? The line-item version of claim C4.
// Expected shape: cleaning contamination is by far the most valuable action
// (fast mode, cheap repair); dropping it costs more than any other knockout.
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "maintenance/repair_value.hpp"

using namespace fmtree;

int main() {
  bench::header("A18", "Value of each condition-based repair action",
                "claim C4, per line item: which repairs pay for themselves");
  const auto model = eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                                             eijoint::current_policy());
  smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  const auto values = maintenance::repair_value_analysis(model, settings);

  TextTable t({"mode (action)", "extra failures if dropped", "extra cost if dropped",
               "spend on action"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right});
  for (const maintenance::RepairValue& v : values) {
    t.add_row({v.mode + " (" + v.action + ")", bench::ci_cell(v.extra_failures, 3),
               bench::ci_cell(v.extra_cost, 0), cell(v.repair_spend, 0)});
  }
  t.print(std::cout);

  const bool contamination_on_top = values.front().mode == "contamination";
  const bool it_pays = values.front().extra_cost.lo > 0;
  std::cout << "\nReading: per 20 joint-years, dropping the cleaning of\n"
               "contamination costs far more than the cleaning itself; slow\n"
               "wear-out modes contribute little at this horizon, matching\n"
               "the tornado (A17).\n"
            << "Shape check (cleaning contamination is the top-value action "
               "and pays for itself): "
            << (contamination_on_top && it_pays ? "PASS" : "FAIL") << "\n";
  return contamination_on_top && it_pays ? 0 : 1;
}
