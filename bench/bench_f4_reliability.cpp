// F4 — System reliability over time per maintenance strategy.
// Expected shape: curves are ordered by inspection intensity; every curve is
// nonincreasing; diminishing returns between 4x and 12x.
#include <vector>

#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

int main() {
  bench::header("F4", "Reliability R(t) per maintenance strategy, 0-50 years",
                "claim C1/C2: more inspections -> higher joint reliability");
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const std::vector<maintenance::MaintenancePolicy> strategies{
      eijoint::corrective_only(), eijoint::inspections_per_year(1),
      eijoint::inspections_per_year(2), eijoint::current_policy(),
      eijoint::inspections_per_year(12)};
  const std::vector<double> grid = smc::linspace_grid(50.0, 10);

  std::vector<std::string> headers{"t (years)"};
  for (const auto& s : strategies) headers.push_back("R(t) " + s.name);
  TextTable t(headers);
  t.set_alignment(std::vector<Align>(headers.size(), Align::Right));

  std::vector<std::vector<smc::CurvePoint>> curves;
  for (const auto& strategy : strategies) {
    curves.push_back(smc::reliability_curve(factory(strategy), grid,
                                            bench::default_settings(50.0, 6000)));
  }
  for (std::size_t g = 0; g < grid.size(); ++g) {
    std::vector<std::string> row{cell(grid[g], 0)};
    for (const auto& curve : curves) row.push_back(cell(curve[g].value.point, 4));
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  // Shape check the paper's claim: at t = 25y, reliability is monotone in
  // inspection frequency.
  const std::size_t mid = grid.size() / 2;
  bool monotone = true;
  for (std::size_t s = 1; s < curves.size(); ++s)
    if (curves[s][mid].value.point < curves[s - 1][mid].value.point) monotone = false;
  std::cout << "\nShape check (R(25y) monotone in inspection frequency): "
            << (monotone ? "PASS" : "FAIL") << "\n";
  return monotone ? 0 : 1;
}
