// T2 — Maintenance actions and cost model of the EI-joint study.
#include "bench/common.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

int main() {
  bench::header("T2", "Maintenance actions and costs",
                "strategy catalogue (abstract claim C1: condition-based "
                "maintenance with periodic inspections modeled naturally)");

  std::cout << "Maintenance strategies compared:\n\n";
  TextTable t({"strategy", "inspections/yr", "inspection cost", "renewal period (y)",
               "renewal cost"});
  t.set_alignment(
      {Align::Left, Align::Right, Align::Right, Align::Right, Align::Right});
  for (const maintenance::MaintenancePolicy& p : eijoint::paper_strategies()) {
    t.add_row({p.name,
               p.has_inspections() ? cell(p.inspections_per_year(), 1) : "0",
               p.has_inspections() ? cell(p.inspection_cost, 0) : "-",
               p.has_replacements() ? cell(p.replacement_period, 0) : "-",
               p.has_replacements() ? cell(p.replacement_cost, 0) : "-"});
  }
  t.print(std::cout);

  const fmt::CorrectivePolicy c = eijoint::standard_corrective();
  std::cout << "\nCorrective maintenance (all strategies):\n";
  TextTable t2({"parameter", "value"});
  t2.add_row({"cost per failure (emergency renewal + penalty)", cell(c.cost, 0)});
  t2.add_row({"repair lead time (downtime per failure, years)", cell(c.delay, 3)});
  t2.add_row({"downtime cost rate (per year down)", cell(c.downtime_cost_rate, 0)});
  t2.print(std::cout);

  std::cout << "\nCondition-based repair actions are per failure mode (T1).\n";
  return 0;
}
