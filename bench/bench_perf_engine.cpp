// Engine performance benchmark: trajectories/second and per-event cost of
// the Monte-Carlo hot path on the two case-study models, emitted as
// BENCH_engine.json so successive PRs are measured against a tracked
// baseline (run via bench/run_perf.sh).
//
// Configurations per model, all at a fixed seed:
//  * baseline  — the pre-PR engine preserved verbatim in bench/seed_engine.hpp
//                (std::priority_queue, full gate re-evaluation per event,
//                fresh allocations per trajectory);
//  * single    — the production scalar engine, one thread, reused
//                SimWorkspace;
//  * batch     — the SoA lane-batch engine (sim::BatchExecutor, Philox
//                counter streams), one thread, at its default lane width;
//  * parallel  — the production engine through ParallelRunner at hardware
//                concurrency (FMTREE_BENCH_THREADS overrides). On a
//                single-core host the run is recorded but flagged
//                parallel_measured=false: a 1-thread run is not a parallel
//                measurement and must not be compared as one;
//  * telemetry — the parallel configuration re-run with all three obs sinks
//                attached (metrics + tracer + throttled progress), to measure
//                the observability overhead and re-check that telemetry
//                changes no result bit (the acceptance bar is <3% on the
//                EI-joint model).
//
// Before timing, the first trajectories of the seed engine, the production
// engine, and its reference-evaluation mode are compared bit-for-bit: the
// speedup must come from doing the same work faster, not different work. The
// batch engine uses a different RNG family, so it is checked differently:
// its per-trajectory results must be bit-identical across lane widths and
// chunk splits (batch_lane_invariant) — statistical agreement with the
// scalar oracle is enforced by tests/smc/engine_equivalence_test.cpp.
//
// Trajectory counts scale with FMTREE_BENCH_TRAJECTORIES; --smoke runs a
// tiny count (the ctest perf smoke target) so the harness cannot bit-rot.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "bench/seed_engine.hpp"
#include "fmt/parser.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/tracer.hpp"
#include "sim/batch_executor.hpp"
#include "sim/fmt_executor.hpp"
#include "smc/runner.hpp"
#include "util/error.hpp"

namespace {

using namespace fmtree;

constexpr std::uint64_t kSeed = 20160628;

std::string read_model_file(const std::string& name) {
  for (const std::string& prefix : {std::string("models/"), std::string("../models/"),
                                    std::string(FMTREE_SOURCE_DIR "/models/")}) {
    std::ifstream f(prefix + name);
    if (f) {
      std::ostringstream text;
      text << f.rdbuf();
      return text.str();
    }
  }
  throw IoError("cannot locate models/" + name);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct ModelReport {
  std::string name;
  std::uint64_t trajectories = 0;
  double horizon = 0.0;
  double baseline_traj_per_sec = 0.0;
  double single_traj_per_sec = 0.0;
  double batch_traj_per_sec = 0.0;
  unsigned batch_lane_width = 0;
  double batch_events_per_trajectory = 0.0;
  double batch_ns_per_event = 0.0;
  double parallel_traj_per_sec = 0.0;
  unsigned parallel_threads = 0;
  bool parallel_measured = false;  ///< false = 1 worker, not a parallel figure
  double telemetry_traj_per_sec = 0.0;
  double telemetry_overhead_pct = 0.0;  ///< parallel slowdown with sinks attached
  double events_per_trajectory = 0.0;
  double ns_per_event = 0.0;
  double speedup_single = 0.0;
  double speedup_batch = 0.0;      ///< batch engine vs seed baseline
  double batch_vs_scalar = 0.0;    ///< batch engine vs production scalar engine
  double speedup_parallel = 0.0;
  bool equivalent = false;            ///< baseline and single agree bit-for-bit
  bool batch_lane_invariant = false;  ///< batch bits stable across widths/chunks
  bool telemetry_equivalent = false;  ///< telemetry run reproduces every summary bit
};

bool bitwise_equal(const smc::TrajectorySummary& a, const smc::TrajectorySummary& b) {
  return a.first_failure_time == b.first_failure_time && a.failures == b.failures &&
         a.downtime == b.downtime && a.cost.inspection == b.cost.inspection &&
         a.cost.repair == b.cost.repair && a.cost.replacement == b.cost.replacement &&
         a.cost.corrective == b.cost.corrective && a.cost.downtime == b.cost.downtime &&
         a.discounted_total == b.discounted_total && a.inspections == b.inspections &&
         a.repairs == b.repairs && a.replacements == b.replacements;
}

bool bitwise_equal(const smc::BatchResult& a, const smc::BatchResult& b) {
  if (a.summaries.size() != b.summaries.size()) return false;
  for (std::size_t i = 0; i < a.summaries.size(); ++i)
    if (!bitwise_equal(a.summaries[i], b.summaries[i])) return false;
  return a.failures_per_leaf == b.failures_per_leaf &&
         a.repairs_per_leaf == b.repairs_per_leaf;
}

bool bitwise_equal(const sim::TrajectoryResult& a, const sim::TrajectoryResult& b) {
  return a.failures == b.failures && a.first_failure_time == b.first_failure_time &&
         a.downtime == b.downtime && a.cost.total() == b.cost.total() &&
         a.discounted_cost.total() == b.discounted_cost.total() &&
         a.inspections == b.inspections && a.repairs == b.repairs &&
         a.replacements == b.replacements &&
         a.repairs_per_leaf == b.repairs_per_leaf &&
         a.failures_per_leaf == b.failures_per_leaf;
}

ModelReport bench_model(const std::string& name, double horizon, std::uint64_t n) {
  const fmt::FaultMaintenanceTree model = fmt::parse_fmt(read_model_file(name + ".fmt"));
  const sim::FmtSimulator simulator(model);
  const bench_seed::SeedSimulator seed_simulator(model);

  ModelReport rep;
  rep.name = name;
  rep.trajectories = n;
  rep.horizon = horizon;

  sim::SimOptions fast;
  fast.horizon = horizon;
  sim::SimOptions reference = fast;
  reference.reference_engine = true;

  // Cross-check: the seed engine, the production engine, and its full
  // re-evaluation mode must agree bit-for-bit before any timing.
  rep.equivalent = true;
  {
    sim::SimWorkspace ws;
    const std::uint64_t check = std::min<std::uint64_t>(n, 200);
    for (std::uint64_t i = 0; i < check; ++i) {
      const auto s = seed_simulator.run(RandomStream(kSeed, i), fast);
      const auto a = simulator.run(RandomStream(kSeed, i), reference);
      const auto b = simulator.run(RandomStream(kSeed, i), fast, ws);
      if (!bitwise_equal(s, a) || !bitwise_equal(s, b)) rep.equivalent = false;
    }
  }

  // Baseline: the engine as it stood before this optimisation pass. Runs
  // fewer trajectories when n is large; rates normalise the difference.
  {
    const std::uint64_t n_base = std::max<std::uint64_t>(n / 4, 1);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n_base; ++i)
      (void)seed_simulator.run(RandomStream(kSeed, i), fast);
    rep.baseline_traj_per_sec = static_cast<double>(n_base) / seconds_since(t0);
  }

  // Production engine, single thread, reused workspace.
  {
    sim::SimWorkspace ws;
    std::uint64_t events = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < n; ++i)
      events += simulator.run(RandomStream(kSeed, i), fast, ws).events;
    const double sec = seconds_since(t0);
    rep.single_traj_per_sec = static_cast<double>(n) / sec;
    rep.events_per_trajectory = static_cast<double>(events) / static_cast<double>(n);
    rep.ns_per_event = events > 0 ? sec * 1e9 / static_cast<double>(events) : 0.0;
  }

  // Batch engine, one thread, default lane width — the same direct-call
  // shape as the scalar single-thread loop above, so the two figures are
  // comparable kernel-to-kernel.
  const sim::BatchExecutor batch(model);
  rep.batch_lane_width = sim::BatchExecutor::kDefaultLaneWidth;
  {
    sim::BatchWorkspace ws;
    const std::uint32_t width = sim::BatchExecutor::kDefaultLaneWidth;
    std::uint64_t events = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t first = 0; first < n; first += width) {
      const auto lanes =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(width, n - first));
      batch.run(kSeed, first, lanes, fast, ws);
      for (std::uint32_t lane = 0; lane < lanes; ++lane)
        events += ws.results[lane].events;
    }
    const double sec = seconds_since(t0);
    rep.batch_traj_per_sec = static_cast<double>(n) / sec;
    rep.batch_events_per_trajectory =
        static_cast<double>(events) / static_cast<double>(n);
    rep.batch_ns_per_event = events > 0 ? sec * 1e9 / static_cast<double>(events) : 0.0;
  }

  // Counter-stream determinism: trajectory i's bits may depend only on
  // (seed, i), never on lane width or how the range was chunked.
  {
    const auto n_check = static_cast<std::uint32_t>(std::min<std::uint64_t>(n, 2048));
    sim::BatchWorkspace whole_ws, split_ws;
    batch.run(kSeed, 0, n_check, fast, whole_ws);
    std::vector<sim::TrajectoryResult> whole = whole_ws.results;
    rep.batch_lane_invariant = true;
    for (std::uint32_t first = 0; first < n_check; first += 5) {  // odd chunking
      const std::uint32_t lanes = std::min<std::uint32_t>(5, n_check - first);
      batch.run(kSeed, first, lanes, fast, split_ws);
      for (std::uint32_t lane = 0; lane < lanes; ++lane)
        if (!bitwise_equal(whole[first + lane], split_ws.results[lane]))
          rep.batch_lane_invariant = false;
    }
  }

  // Production engine through the deterministic parallel runner, at hardware
  // concurrency (or FMTREE_BENCH_THREADS). threads() is what actually ran:
  // a 1-worker run is recorded but flagged as not a parallel measurement.
  unsigned requested_threads = 0;
  if (const char* env = std::getenv("FMTREE_BENCH_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && v > 0) requested_threads = static_cast<unsigned>(v);
  }
  const smc::ParallelRunner runner(simulator, requested_threads);
  rep.parallel_threads = runner.threads();
  rep.parallel_measured = runner.threads() > 1;
  smc::BatchResult plain;
  {
    const auto t0 = std::chrono::steady_clock::now();
    plain = runner.run(kSeed, 0, n, fast);
    rep.parallel_traj_per_sec = static_cast<double>(n) / seconds_since(t0);
  }

  // Same parallel run with every telemetry sink attached: the observability
  // overhead, and a re-check that telemetry changes no result bit.
  {
    obs::MetricsRegistry metrics;
    obs::Tracer tracer;
    obs::ProgressReporter progress([](const obs::Progress&) {}, 0.25);
    sim::SimOptions instrumented = fast;
    instrumented.telemetry = {
        .metrics = &metrics, .tracer = &tracer, .progress = &progress};
    const auto t0 = std::chrono::steady_clock::now();
    const smc::BatchResult traced = runner.run(kSeed, 0, n, instrumented);
    rep.telemetry_traj_per_sec = static_cast<double>(n) / seconds_since(t0);
    rep.telemetry_overhead_pct =
        (1.0 - rep.telemetry_traj_per_sec / rep.parallel_traj_per_sec) * 100.0;
    rep.telemetry_equivalent = bitwise_equal(plain, traced) &&
                               metrics.counter_value("smc.trajectories") == n;
  }

  rep.speedup_single = rep.single_traj_per_sec / rep.baseline_traj_per_sec;
  rep.speedup_batch = rep.batch_traj_per_sec / rep.baseline_traj_per_sec;
  rep.batch_vs_scalar = rep.batch_traj_per_sec / rep.single_traj_per_sec;
  rep.speedup_parallel = rep.parallel_traj_per_sec / rep.baseline_traj_per_sec;
  return rep;
}

void write_json(std::ostream& os, const std::vector<ModelReport>& reports) {
  os << "{\n  \"benchmark\": \"engine\",\n  \"seed\": " << kSeed
     << ",\n  \"models\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const ModelReport& r = reports[i];
    os << "    {\n"
       << "      \"model\": \"" << r.name << "\",\n"
       << "      \"trajectories\": " << r.trajectories << ",\n"
       << "      \"horizon\": " << r.horizon << ",\n"
       << "      \"baseline_traj_per_sec\": " << r.baseline_traj_per_sec << ",\n"
       << "      \"single_thread_traj_per_sec\": " << r.single_traj_per_sec << ",\n"
       << "      \"batch_traj_per_sec\": " << r.batch_traj_per_sec << ",\n"
       << "      \"batch_lane_width\": " << r.batch_lane_width << ",\n"
       << "      \"batch_events_per_trajectory\": " << r.batch_events_per_trajectory
       << ",\n"
       << "      \"batch_ns_per_event\": " << r.batch_ns_per_event << ",\n"
       << "      \"parallel_traj_per_sec\": " << r.parallel_traj_per_sec << ",\n"
       << "      \"parallel_threads\": " << r.parallel_threads << ",\n"
       << "      \"parallel_measured\": " << (r.parallel_measured ? "true" : "false")
       << ",\n"
       << "      \"telemetry_traj_per_sec\": " << r.telemetry_traj_per_sec << ",\n"
       << "      \"telemetry_overhead_pct\": " << r.telemetry_overhead_pct << ",\n"
       << "      \"events_per_trajectory\": " << r.events_per_trajectory << ",\n"
       << "      \"ns_per_event\": " << r.ns_per_event << ",\n"
       << "      \"speedup_single_thread\": " << r.speedup_single << ",\n"
       << "      \"speedup_batch\": " << r.speedup_batch << ",\n"
       << "      \"batch_vs_scalar\": " << r.batch_vs_scalar << ",\n"
       << "      \"speedup_parallel\": " << r.speedup_parallel << ",\n"
       << "      \"bitwise_equivalent\": " << (r.equivalent ? "true" : "false") << ",\n"
       << "      \"batch_lane_invariant\": "
       << (r.batch_lane_invariant ? "true" : "false") << ",\n"
       << "      \"telemetry_bitwise_equivalent\": "
       << (r.telemetry_equivalent ? "true" : "false") << "\n"
       << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_engine.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_perf_engine [--smoke] [--out FILE]\n";
      return 2;
    }
  }

  fmtree::bench::header("M19", "Engine throughput",
                        "hot-path performance baseline (not a paper claim)");

  const std::uint64_t n = smoke ? 200 : fmtree::bench::trajectories(100000);
  std::vector<ModelReport> reports;
  reports.push_back(bench_model("ei_joint", 10.0, n));
  reports.push_back(bench_model("compressor", 10.0, n));

  bool ok = true;
  for (const ModelReport& r : reports) {
    std::cout << r.name << ": baseline "
              << static_cast<std::uint64_t>(r.baseline_traj_per_sec)
              << " traj/s, single " << static_cast<std::uint64_t>(r.single_traj_per_sec)
              << " traj/s (x" << r.speedup_single << ", " << r.ns_per_event
              << " ns/ev), batch " << static_cast<std::uint64_t>(r.batch_traj_per_sec)
              << " traj/s (x" << r.speedup_batch << ", x" << r.batch_vs_scalar
              << " vs scalar, W=" << r.batch_lane_width << ", " << r.batch_ns_per_event
              << " ns/ev), parallel "
              << static_cast<std::uint64_t>(r.parallel_traj_per_sec) << " traj/s (x"
              << r.speedup_parallel << ", " << r.parallel_threads << " threads"
              << (r.parallel_measured ? "" : "; 1 worker — NOT a parallel figure")
              << "), telemetry "
              << static_cast<std::uint64_t>(r.telemetry_traj_per_sec) << " traj/s ("
              << r.telemetry_overhead_pct << "% overhead), " << r.events_per_trajectory
              << " ev/traj, "
              << (r.equivalent && r.telemetry_equivalent ? "bitwise-equivalent"
                                                         : "RESULTS DIVERGED")
              << ", "
              << (r.batch_lane_invariant ? "batch lane/chunk-invariant"
                                         : "BATCH BITS DEPEND ON LANE LAYOUT")
              << "\n";
    ok = ok && r.equivalent && r.telemetry_equivalent && r.batch_lane_invariant;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  write_json(out, reports);
  std::cout << "\nwrote " << out_path << "\n";
  std::cout << (ok ? "PASS" : "FAIL") << ": "
            << (ok ? "scalar results bit-identical, batch results lane/chunk-invariant"
                   : "an equivalence or invariance check failed")
            << "\n";
  return ok ? 0 : 1;
}
