// A16 — Sensitivity of the cost-optimal inspection frequency to the failure
// cost. The paper's conclusion ("current policy close to cost-optimal")
// hinges on the corrective cost estimate; this ablation shows how the
// optimum moves when a failure is cheaper or dearer than assumed.
// Expected shape: the optimal frequency is nondecreasing in the failure
// cost — dearer failures justify more inspections.
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "maintenance/optimizer.hpp"

using namespace fmtree;

int main() {
  bench::header("A16", "Optimal inspection frequency vs failure cost",
                "robustness of claim C4 to the corrective-cost estimate");
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  TextTable t({"failure cost multiplier", "corrective cost", "optimal insp/yr",
               "optimal cost/yr", "current(4x) cost/yr", "current gap"});
  t.set_alignment({Align::Right, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Right});
  std::vector<double> optima;
  for (double multiplier : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    maintenance::MaintenancePolicy base = eijoint::current_policy();
    base.corrective.cost *= multiplier;
    base.corrective.downtime_cost_rate *= multiplier;
    const auto candidates = maintenance::inspection_frequency_candidates(
        base, eijoint::cost_curve_frequencies());
    const maintenance::SweepResult sweep =
        maintenance::sweep_policies(factory, candidates, settings);
    const double opt_freq = sweep.best().policy.inspections_per_year();
    optima.push_back(opt_freq);
    double current_cost = 0;
    for (const auto& e : sweep.curve)
      if (e.policy.inspections_per_year() == 4.0) current_cost = e.cost_per_year();
    t.add_row({cell(multiplier, 2), cell(base.corrective.cost, 0), cell(opt_freq, 1),
               cell(sweep.best().cost_per_year(), 0), cell(current_cost, 0),
               cell(100.0 * (current_cost / sweep.best().cost_per_year() - 1), 1) + "%"});
  }
  t.print(std::cout);

  bool nondecreasing = true;
  for (std::size_t i = 1; i < optima.size(); ++i)
    if (optima[i] < optima[i - 1]) nondecreasing = false;
  std::cout << "\nShape check (optimal frequency nondecreasing in failure cost): "
            << (nondecreasing ? "PASS" : "FAIL") << "\n";
  return nondecreasing ? 0 : 1;
}
