// T8 — KPI summary per named maintenance strategy (the paper's strategy
// comparison table): reliability, failures, availability, cost.
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

int main() {
  bench::header("T8", "Strategy comparison: reliability / failures / cost",
                "claims C2+C4: one model, all KPIs; current ~ cost-optimal");
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  TextTable t({"strategy", "R(20y)", "E[failures]/yr", "availability", "insp+rep/yr",
               "failures cost/yr", "total cost/yr"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Right, Align::Right});
  double current_cost = 0, best_cost = 1e300;
  for (const maintenance::MaintenancePolicy& policy : eijoint::paper_strategies()) {
    const smc::KpiReport k = smc::analyze(factory(policy), settings);
    const fmt::CostBreakdown per_year = k.mean_cost / settings.horizon;
    const double planned = per_year.inspection + per_year.repair + per_year.replacement;
    const double unplanned = per_year.corrective + per_year.downtime;
    t.add_row({policy.name, cell(k.reliability.point, 3),
               cell(k.failures_per_year.point, 4), cell(k.availability.point, 5),
               cell(planned, 0), cell(unplanned, 0),
               cell(k.cost_per_year.point, 0)});
    best_cost = std::min(best_cost, k.cost_per_year.point);
    if (policy.name == "current-4x") current_cost = k.cost_per_year.point;
  }
  t.print(std::cout);

  const bool near_optimal = current_cost <= 1.15 * best_cost;
  std::cout << "\nShape check (current-4x within 15% of the cheapest strategy): "
            << (near_optimal ? "PASS" : "FAIL") << "\n";
  return near_optimal ? 0 : 1;
}
