// F3 — The FMT of the EI-joint (the paper's model figure), as Graphviz DOT
// plus a structural summary.
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "ft/cutsets.hpp"
#include "ft/dot.hpp"

using namespace fmtree;

int main() {
  bench::header("F3", "EI-joint fault maintenance tree",
                "the model figure (taxonomy in DESIGN.md)");
  const fmt::FaultMaintenanceTree model = eijoint::build_ei_joint(
      eijoint::EiJointParameters::defaults(), eijoint::current_policy());

  std::cout << ft::to_dot(model.structure(), "ei_joint") << "\n";

  std::cout << "Structural summary:\n"
            << "  leaves: " << model.num_ebes() << "\n"
            << "  gates:  " << model.structure().gates().size() << "\n"
            << "  rate dependencies: " << model.rdeps().size() << "\n"
            << "  inspection modules: " << model.inspections().size() << "\n";
  const auto cuts = ft::minimal_cut_sets(model.structure());
  std::size_t singletons = 0;
  for (const auto& c : cuts)
    if (c.size() == 1) ++singletons;
  std::cout << "  minimal cut sets: " << cuts.size() << " (" << singletons
            << " single-mode, " << cuts.size() - singletons << " bolt pairs)\n"
            << "\n(pipe the DOT block above through `dot -Tpdf` to render the "
               "figure)\n";
  return 0;
}
