// T6 — Calibration & validation: fit the model from synthetic "field data"
// and check it predicts the failures observed in a held-out incident
// database (abstract claim C3: "a model that faithfully predicts the
// expected number of failures at system level").
//
// Pipeline (mirrors the paper's data sources):
//   ground truth --> elicitation datasets (expert interviews)   --> fitted modes
//   ground truth --> train incident DB (incident registration)  --> sanity rates
//   fitted model --> SMC prediction  vs  held-out incident DB   --> validation
#include "bench/common.hpp"
#include "data/estimate.hpp"
#include "data/generator.hpp"
#include "data/validate.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "maintenance/policy.hpp"

using namespace fmtree;

int main() {
  bench::header("T6", "Predicted vs observed failures (calibration/validation)",
                "claim C3: calibrated FMT faithfully predicts system failures");
  const auto params = eijoint::EiJointParameters::defaults();
  const maintenance::MaintenancePolicy policy = eijoint::current_policy();
  const fmt::FaultMaintenanceTree truth = eijoint::build_ei_joint(params, policy);

  // --- Calibration: fit each mode from elicited degradation durations -------
  const std::size_t elicitation_n = static_cast<std::size_t>(bench::trajectories(3000));
  std::cout << "Fitting degradation models from " << elicitation_n
            << " elicited trajectories per mode:\n\n";
  TextTable fit_table({"failure mode", "true phases/mean/thr", "fitted phases/mean/thr"});
  fmt::FaultMaintenanceTree calibrated;
  {
    // Rebuild the same structure with fitted leaves.
    std::vector<fmt::NodeId> electrical_kids, mechanical_kids, bolts;
    auto fitted_leaf = [&](const std::string& name) {
      const fmt::NodeId leaf = *truth.find(name);
      const auto samples = data::elicit_degradation(truth, leaf, elicitation_n, 2016);
      const fmt::DegradationModel fitted = data::fit_degradation(samples);
      const fmt::DegradationModel& real = truth.ebe(leaf).degradation;
      fit_table.add_row(
          {name,
           cell(real.phases()) + "/" + cell(real.mean_time_to_failure(), 1) + "/" +
               cell(real.threshold_phase()),
           cell(fitted.phases()) + "/" + cell(fitted.mean_time_to_failure(), 1) + "/" +
               cell(fitted.threshold_phase())});
      return calibrated.add_ebe(name, fitted, truth.ebe(leaf).repair);
    };
    electrical_kids.push_back(fitted_leaf("lipping"));
    electrical_kids.push_back(fitted_leaf("contamination"));
    electrical_kids.push_back(fitted_leaf("endpost_wear"));
    electrical_kids.push_back(fitted_leaf("impact_damage"));
    for (int b = 1; b <= params.num_bolts; ++b)
      bolts.push_back(fitted_leaf("bolt_" + std::to_string(b)));
    mechanical_kids.push_back(
        calibrated.add_voting("bolt_group", params.bolt_vote, bolts));
    mechanical_kids.push_back(fitted_leaf("fishplate_crack"));
    mechanical_kids.push_back(fitted_leaf("glue_degradation"));
    mechanical_kids.push_back(fitted_leaf("joint_batter"));
    const fmt::NodeId electrical =
        calibrated.add_or("electrical_failure", electrical_kids);
    const fmt::NodeId mechanical =
        calibrated.add_or("mechanical_failure", mechanical_kids);
    calibrated.set_top(calibrated.add_or("ei_joint_failure", {electrical, mechanical}));
    if (params.enable_rdep) {
      calibrated.add_rdep("batter_accelerates_lipping", *calibrated.find("joint_batter"),
                          {*calibrated.find("lipping")}, params.batter_lipping_factor,
                          params.batter_trigger_phase);
      calibrated.add_rdep("batter_accelerates_glue", *calibrated.find("joint_batter"),
                          {*calibrated.find("glue_degradation")},
                          params.batter_glue_factor, params.batter_trigger_phase);
    }
    maintenance::apply_policy(calibrated, policy);
  }
  fit_table.print(std::cout);

  // --- Held-out incident database --------------------------------------------
  const auto fleet = static_cast<std::uint32_t>(bench::trajectories(4000));
  const double window = 10.0;
  const data::IncidentDatabase holdout =
      data::generate_incidents(truth, fleet, window, 77001);
  std::cout << "\nHeld-out incident registration DB: " << fleet << " joints x "
            << window << " years, " << holdout.size() << " incidents ("
            << cell(holdout.failure_rate(), 4) << " per joint-year)\n\n";

  // --- Validation --------------------------------------------------------------
  smc::AnalysisSettings s = bench::default_settings(window, 8000, 5150);
  const data::ValidationReport report = data::validate_against(calibrated, holdout, s);

  TextTable v({"level", "observed /joint-yr (95% CI)", "predicted /joint-yr (95% CI)",
               "verdict"});
  v.set_alignment({Align::Left, Align::Right, Align::Right, Align::Left});
  auto rate_cell = [](const data::RateEstimate& r) {
    return cell(r.rate, 4) + " [" + cell(r.lo, 4) + ", " + cell(r.hi, 4) + "]";
  };
  v.add_row({"system", rate_cell(report.system.observed),
             bench::ci_cell(report.system.predicted, 4),
             report.system.intervals_overlap ? "MATCH" : "MISMATCH"});
  for (const data::ValidationRow& row : report.modes) {
    v.add_row({"  " + row.label, rate_cell(row.observed),
               bench::ci_cell(row.predicted, 4),
               row.intervals_overlap ? "match" : "mismatch"});
  }
  v.print(std::cout);

  std::cout << "\nShape check (system-level prediction matches holdout): "
            << (report.system.intervals_overlap ? "PASS" : "FAIL") << "\n";
  return report.system.intervals_overlap ? 0 : 1;
}
