// Shared helpers for the experiment benches. Each bench regenerates one
// table/figure from the DESIGN.md experiment index and prints the rows the
// paper reports. Sample counts can be scaled with FMTREE_BENCH_TRAJECTORIES.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "smc/kpi.hpp"
#include "util/table.hpp"

namespace fmtree::bench {

inline std::uint64_t trajectories(std::uint64_t dflt) {
  if (const char* env = std::getenv("FMTREE_BENCH_TRAJECTORIES")) {
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) return v;
  }
  return dflt;
}

inline smc::AnalysisSettings default_settings(double horizon, std::uint64_t dflt_n,
                                              std::uint64_t seed = 20160628) {
  smc::AnalysisSettings s;
  s.horizon = horizon;
  s.trajectories = trajectories(dflt_n);
  s.seed = seed;
  return s;
}

inline void header(const std::string& id, const std::string& title,
                   const std::string& claim) {
  std::cout << "================================================================\n"
            << id << ": " << title << "\n"
            << "Reproduces: " << claim << "\n"
            << "================================================================\n\n";
}

inline std::string ci_cell(const ConfidenceInterval& ci, int decimals) {
  return cell(ci.point, decimals) + " [" + cell(ci.lo, decimals) + ", " +
         cell(ci.hi, decimals) + "]";
}

}  // namespace fmtree::bench
