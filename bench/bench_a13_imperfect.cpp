// A13 — Ablation: imperfect inspections. The base study assumes a visual
// inspection always spots degradation past the threshold; here each round
// detects with probability p < 1. Expected shape: failures increase as p
// drops, and an imperfect frequent policy behaves like a perfect sparser
// one (compensation).
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

namespace {

// The current policy, but with the inspection module's detection
// probability set to `detect`.
fmt::FaultMaintenanceTree with_detection(double detect) {
  fmt::FaultMaintenanceTree model = eijoint::build_ei_joint(
      eijoint::EiJointParameters::defaults(), eijoint::corrective_only());
  std::vector<fmt::NodeId> targets;
  for (fmt::NodeId leaf : model.leaves())
    if (model.ebe(leaf).degradation.inspectable()) targets.push_back(leaf);
  model.add_inspection(fmt::InspectionModule{"visual", 0.25, -1, 35.0,
                                             std::move(targets), detect});
  return model;
}

}  // namespace

int main() {
  bench::header("A13", "Ablation: inspection detection probability",
                "extension: imperfect inspections degrade gracefully");
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  TextTable t({"detection p", "E[failures]/yr", "repairs/yr", "cost/yr"});
  t.set_alignment({Align::Right, Align::Right, Align::Right, Align::Right});
  std::vector<double> rates;
  for (double p : {0.25, 0.5, 0.75, 0.9, 1.0}) {
    const smc::KpiReport k = smc::analyze(with_detection(p), settings);
    rates.push_back(k.failures_per_year.point);
    t.add_row({cell(p, 2), cell(k.failures_per_year.point, 4),
               cell(k.mean_repairs / settings.horizon, 2),
               cell(k.cost_per_year.point, 0)});
  }
  t.print(std::cout);

  bool monotone = true;
  for (std::size_t i = 1; i < rates.size(); ++i)
    if (rates[i] > rates[i - 1] * 1.03) monotone = false;
  // Compensation: quarterly at p=0.5 should land near perfect ~2x/yr.
  const smc::KpiReport biannual = smc::analyze(
      eijoint::build_ei_joint(eijoint::EiJointParameters::defaults(),
                              eijoint::inspections_per_year(2)),
      settings);
  std::cout << "\nCompensation check: quarterly@p=0.5 gives "
            << cell(rates[1], 4) << " failures/yr vs perfect 2x/yr "
            << cell(biannual.failures_per_year.point, 4) << "\n";
  std::cout << "Shape check (failure rate nonincreasing in detection p): "
            << (monotone ? "PASS" : "FAIL") << "\n";
  return monotone ? 0 : 1;
}
