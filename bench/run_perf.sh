#!/usr/bin/env bash
# Runs the tracked engine performance benchmark and writes BENCH_engine.json
# at the repository root. Usage:
#
#   bench/run_perf.sh                 # full run (FMTREE_BENCH_TRAJECTORIES scales it)
#   bench/run_perf.sh --smoke         # tiny trajectory count, seconds not minutes
#   BUILD_DIR=out bench/run_perf.sh   # non-default build tree
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"

if [ ! -d "$BUILD" ]; then
  cmake -B "$BUILD" -S "$ROOT"
fi
cmake --build "$BUILD" --target bench_perf_engine -j "$(nproc)"

BIN="$BUILD/bench/bench_perf_engine"
if [ ! -x "$BIN" ]; then
  echo "error: benchmark binary missing at $BIN (build failed, or set BUILD_DIR to the right tree)" >&2
  exit 1
fi

"$BIN" --out "$ROOT/BENCH_engine.json" "$@"
