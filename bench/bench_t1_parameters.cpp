// T1 — Degradation parameters of the EI-joint failure modes.
// (Paper: the basic-event parameter table from incident data + expert
// interviews. Values here are the documented synthetic defaults.)
#include "bench/common.hpp"
#include "eijoint/params.hpp"
#include "fmt/degradation.hpp"

using namespace fmtree;

int main() {
  bench::header("T1", "EI-joint degradation parameters",
                "model inventory (abstract claim C1: FMTs capture the modes)");
  const eijoint::EiJointParameters p = eijoint::EiJointParameters::defaults();

  TextTable t({"failure mode", "phases", "mean TTF (y)", "threshold phase",
               "mean warning (y)", "repair action", "repair cost"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right, Align::Right,
                   Align::Left, Align::Right});
  for (const eijoint::ModeParams* mode : p.all_modes()) {
    const bool detectable = mode->threshold <= mode->phases;
    // Mean residual time from reaching the threshold phase to failure: the
    // inspection's window of opportunity.
    const double warning =
        detectable ? mode->mean_ttf *
                         (static_cast<double>(mode->phases - mode->threshold + 1) /
                          static_cast<double>(mode->phases))
                   : 0.0;
    t.add_row({mode->name, cell(mode->phases), cell(mode->mean_ttf, 1),
               detectable ? cell(mode->threshold) : "-(invisible)",
               detectable ? cell(warning, 2) : "-",
               mode->repair_action == "none" ? "-" : mode->repair_action,
               mode->repair_cost > 0 ? cell(mode->repair_cost, 0) : "-"});
  }
  t.print(std::cout);

  std::cout << "\nStructural notes:\n"
            << "  * '" << p.bolt.name << "' appears " << p.num_bolts
            << " times under a " << p.bolt_vote << "/" << p.num_bolts
            << " voting gate.\n"
            << "  * RDEP: " << p.batter.name << " at phase >= "
            << p.batter_trigger_phase << " accelerates " << p.lipping.name << " x"
            << p.batter_lipping_factor << " and " << p.glue.name << " x"
            << p.batter_glue_factor << ".\n"
            << "  * '" << p.impact_damage.name
            << "' is memoryless (no precursor) - the floor that inspections "
               "cannot remove.\n";
  return 0;
}
