// C15 — Generality study: the pneumatic-compressor FMT under its
// maintenance-plan catalogue. Extension beyond the paper (the formalism's
// other railway case study): two-tier inspection plans, timed repairs, and
// the oil→wear rate coupling in one model.
#include "bench/common.hpp"
#include "compressor/compressor.hpp"

using namespace fmtree;

int main() {
  bench::header("C15", "Compressor maintenance plans (second case study)",
                "library generality: multi-tier plans on a different asset");
  const auto params = compressor::CompressorParameters::defaults();
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  TextTable t({"plan", "E[failures]/yr", "R(20y)", "planned/yr", "unplanned/yr",
               "total/yr"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Right});
  double best = 1e300, current = 0, minor_only = 0, major_only = 0;
  for (const compressor::CompressorPlan& plan : compressor::compressor_plans()) {
    const smc::KpiReport k =
        smc::analyze(compressor::build_compressor(params, plan), settings);
    const fmt::CostBreakdown py = k.mean_cost / settings.horizon;
    t.add_row({plan.name, cell(k.failures_per_year.point, 4),
               cell(k.reliability.point, 3),
               cell(py.inspection + py.repair + py.replacement, 0),
               cell(py.corrective + py.downtime, 0),
               cell(k.cost_per_year.point, 0)});
    best = std::min(best, k.cost_per_year.point);
    if (plan.name == "current") current = k.cost_per_year.point;
    if (plan.name == "minor-only") minor_only = k.cost_per_year.point;
    if (plan.name == "major-only") major_only = k.cost_per_year.point;
  }
  t.print(std::cout);

  const bool shape = current <= best * 1.02 && minor_only < major_only;
  std::cout << "\nReading: the consumables (oil, dryer, separator) dominate the\n"
               "failure intensity, and degraded oil accelerates the wear parts\n"
               "(RDEP) - so the cheap minor service outperforms the expensive\n"
               "major inspection alone; the combined plan wins overall.\n"
            << "Shape check (combined plan cheapest; minor-only beats "
               "major-only): "
            << (shape ? "PASS" : "FAIL") << "\n";
  return shape ? 0 : 1;
}
