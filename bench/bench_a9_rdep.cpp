// A9 — Ablation: rate dependencies (battered joint accelerating lipping and
// glue) on vs off. Expected shape: removing RDEP underestimates failures,
// most visibly under sparse inspection where batter degradation lingers.
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

int main() {
  bench::header("A9", "Ablation: RDEP acceleration on/off",
                "design decision 2 in DESIGN.md: RDEP as rate multiplication");
  eijoint::EiJointParameters with_rdep = eijoint::EiJointParameters::defaults();
  eijoint::EiJointParameters without_rdep = with_rdep;
  without_rdep.enable_rdep = false;
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  TextTable t({"inspections/yr", "E[fail]/yr with RDEP", "E[fail]/yr without",
               "underestimate"});
  t.set_alignment({Align::Right, Align::Right, Align::Right, Align::Right});
  bool sparse_underestimates = true;
  for (double freq : {0.0, 0.5, 1.0, 4.0}) {
    const auto policy = eijoint::inspections_per_year(freq);
    const smc::KpiReport k_with =
        smc::analyze(eijoint::build_ei_joint(with_rdep, policy), settings);
    const smc::KpiReport k_without =
        smc::analyze(eijoint::build_ei_joint(without_rdep, policy), settings);
    const double delta =
        100.0 *
        (1.0 - k_without.failures_per_year.point / k_with.failures_per_year.point);
    // The dependency only matters while batter lingers past its trigger
    // phase, i.e. under sparse inspection; at 4x/yr the repairs suppress it.
    if (freq <= 0.5 &&
        k_without.failures_per_year.point >= k_with.failures_per_year.point)
      sparse_underestimates = false;
    t.add_row({cell(freq, 1), cell(k_with.failures_per_year.point, 4),
               cell(k_without.failures_per_year.point, 4), cell(delta, 1) + "%"});
  }
  t.print(std::cout);
  std::cout << "\nReading: the acceleration inflates failures under sparse\n"
               "inspection; frequent inspection repairs batter before its\n"
               "trigger phase, suppressing the dependency entirely.\n"
            << "Shape check (RDEP underestimated when inspections sparse "
               "(<= 0.5x/yr)): "
            << (sparse_underestimates ? "PASS" : "FAIL") << "\n";
  return sparse_underestimates ? 0 : 1;
}
