// M14 — Microbenchmarks of the static-analysis backends (google-benchmark):
// BDD compilation/evaluation and minimal cut sets.
#include <benchmark/benchmark.h>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "ft/bdd.hpp"
#include "ft/cutsets.hpp"

using namespace fmtree;

namespace {

const ft::FaultTree& ei_joint_structure() {
  static const fmt::FaultMaintenanceTree model = eijoint::build_ei_joint(
      eijoint::EiJointParameters::defaults(), eijoint::current_policy());
  return model.structure();
}

ft::FaultTree voting_tree(int n, int k) {
  ft::FaultTree t;
  std::vector<ft::NodeId> leaves;
  for (int i = 0; i < n; ++i)
    leaves.push_back(
        t.add_basic_event("l" + std::to_string(i), Distribution::exponential(0.1)));
  t.set_top(t.add_voting("top", k, leaves));
  return t;
}

void BM_BddBuildEiJoint(benchmark::State& state) {
  const ft::FaultTree& tree = ei_joint_structure();
  for (auto _ : state) {
    ft::BddManager mgr(static_cast<std::uint32_t>(tree.basic_events().size()));
    benchmark::DoNotOptimize(ft::build_bdd(mgr, tree));
  }
}
BENCHMARK(BM_BddBuildEiJoint);

void BM_BddProbabilityEiJoint(benchmark::State& state) {
  const ft::FaultTree& tree = ei_joint_structure();
  ft::BddManager mgr(static_cast<std::uint32_t>(tree.basic_events().size()));
  const ft::BddRef f = ft::build_bdd(mgr, tree);
  const std::vector<double> p = tree.probabilities_at(10.0);
  for (auto _ : state) benchmark::DoNotOptimize(mgr.probability(f, p));
}
BENCHMARK(BM_BddProbabilityEiJoint);

void BM_BddVoting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ft::FaultTree tree = voting_tree(n, n / 2);
  for (auto _ : state) {
    ft::BddManager mgr(static_cast<std::uint32_t>(n));
    const ft::BddRef f = ft::build_bdd(mgr, tree);
    benchmark::DoNotOptimize(
        mgr.probability(f, tree.probabilities_at(5.0)));
  }
}
BENCHMARK(BM_BddVoting)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_MinimalCutSetsEiJoint(benchmark::State& state) {
  const ft::FaultTree& tree = ei_joint_structure();
  for (auto _ : state) benchmark::DoNotOptimize(ft::minimal_cut_sets(tree));
}
BENCHMARK(BM_MinimalCutSetsEiJoint);

void BM_MinimalCutSetsVoting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ft::FaultTree tree = voting_tree(n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(ft::minimal_cut_sets(tree));
}
BENCHMARK(BM_MinimalCutSetsVoting)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
