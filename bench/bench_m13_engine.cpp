// M13 — Microbenchmarks of the simulation engine (google-benchmark):
// trajectory throughput on the EI-joint model and event-queue operations.
#include <benchmark/benchmark.h>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "sim/event_queue.hpp"
#include "sim/fmt_executor.hpp"
#include "smc/runner.hpp"

using namespace fmtree;

namespace {

const fmt::FaultMaintenanceTree& ei_joint_current() {
  static const fmt::FaultMaintenanceTree model = eijoint::build_ei_joint(
      eijoint::EiJointParameters::defaults(), eijoint::current_policy());
  return model;
}

void BM_TrajectoryEiJoint(benchmark::State& state) {
  const sim::FmtSimulator simulator(ei_joint_current());
  sim::SimOptions opts;
  opts.horizon = static_cast<double>(state.range(0));
  std::uint64_t stream = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator.run(RandomStream(1, stream++), opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["sim-years/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * opts.horizon,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrajectoryEiJoint)->Arg(10)->Arg(50)->Arg(200);

void BM_ParallelRunner(benchmark::State& state) {
  const sim::FmtSimulator simulator(ei_joint_current());
  const smc::ParallelRunner runner(simulator,
                                   static_cast<unsigned>(state.range(0)));
  sim::SimOptions opts;
  opts.horizon = 20.0;
  std::uint64_t first = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.run(1, first, 512, opts));
    first += 512;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_ParallelRunner)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  RandomStream rng(3, 0);
  for (auto _ : state) {
    sim::EventQueue<std::uint32_t> q;
    for (std::size_t i = 0; i < n; ++i)
      q.schedule(rng.uniform01(), static_cast<std::uint32_t>(i));
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_DistributionSampling(benchmark::State& state) {
  const Distribution d = Distribution::erlang(6, 0.6);
  RandomStream rng(9, 0);
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DistributionSampling);

}  // namespace

BENCHMARK_MAIN();
