// A14 — Should the EI-joint be preventively renewed? Sweep of the periodic
// replacement interval on top of the current inspection policy.
// Expected shape: the joint's detectable modes are already controlled by
// condition-based repairs and the undetectable impact mode is memoryless
// (renewal cannot help it), so preventive renewal adds cost at every
// period — consistent with the study's "extra maintenance is not worth it".
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

int main() {
  bench::header("A14", "Preventive renewal period sweep (on top of current-4x)",
                "claim C4 corollary: periodic renewal does not pay off");
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const smc::AnalysisSettings settings = bench::default_settings(30.0, 8000);

  const smc::KpiReport baseline =
      smc::analyze(factory(eijoint::current_policy()), settings);

  TextTable t({"renewal period (y)", "E[failures]/yr", "renewal cost/yr",
               "total cost/yr", "delta vs no renewal"});
  t.set_alignment({Align::Right, Align::Right, Align::Right, Align::Right,
                   Align::Right});
  t.add_row({"never", cell(baseline.failures_per_year.point, 4), "0",
             cell(baseline.cost_per_year.point, 0), "-"});
  bool renewal_never_pays = true;
  for (double period : {30.0, 20.0, 15.0, 10.0, 5.0}) {
    const smc::KpiReport k =
        smc::analyze(factory(eijoint::with_renewal(period)), settings);
    const double delta = k.cost_per_year.point - baseline.cost_per_year.point;
    if (delta < 0) renewal_never_pays = false;
    t.add_row({cell(period, 0), cell(k.failures_per_year.point, 4),
               cell(k.mean_cost.replacement / settings.horizon, 0),
               cell(k.cost_per_year.point, 0),
               (delta >= 0 ? "+" : "") + cell(delta, 0)});
  }
  t.print(std::cout);

  std::cout << "\nReading: renewals do cut failures slightly (the wear-out\n"
               "modes restart from new), but the avoided failure cost never\n"
               "approaches the renewal spend; the memoryless impact mode is\n"
               "untouched by renewal.\n"
            << "Shape check (no renewal period beats the current policy): "
            << (renewal_never_pays ? "PASS" : "FAIL") << "\n";
  return renewal_never_pays ? 0 : 1;
}
