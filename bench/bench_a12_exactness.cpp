// A12 — Cross-validation of the statistical model checker against the exact
// CTMC (uniformization) backend on Markovian submodels: the SMC confidence
// interval must cover the exact value (at its confidence level).
#include "bench/common.hpp"
#include "analytic/fmt2ctmc.hpp"
#include "fmt/fmtree.hpp"

using namespace fmtree;

namespace {

struct Case {
  std::string name;
  fmt::FaultMaintenanceTree model;
};

std::vector<Case> unreliability_cases() {
  std::vector<Case> cases;
  {
    fmt::FaultMaintenanceTree m;
    m.set_top(m.add_ebe("erlang", fmt::DegradationModel::erlang(4, 8.0, 3)));
    cases.push_back({"single Erlang(4) leaf", std::move(m)});
  }
  {
    fmt::FaultMaintenanceTree m;
    const auto a = m.add_ebe("a", fmt::DegradationModel::erlang(2, 5.0, 2));
    const auto b = m.add_basic_event("b", Distribution::exponential(0.15));
    m.set_top(m.add_or("top", {a, b}));
    cases.push_back({"series (Erlang + exp)", std::move(m)});
  }
  {
    fmt::FaultMaintenanceTree m;
    std::vector<fmt::NodeId> leaves;
    for (int i = 0; i < 3; ++i)
      leaves.push_back(m.add_ebe("l" + std::to_string(i),
                                 fmt::DegradationModel::erlang(2, 4.0, 2)));
    m.set_top(m.add_voting("vote", 2, leaves));
    cases.push_back({"2-of-3 voting", std::move(m)});
  }
  {
    fmt::FaultMaintenanceTree m;
    const auto a = m.add_ebe("batter", fmt::DegradationModel::erlang(3, 6.0, 4));
    const auto b = m.add_ebe("lipping", fmt::DegradationModel::erlang(2, 8.0, 3));
    m.set_top(m.add_and("top", {a, b}));
    m.add_rdep("accel", a, {b}, 3.0, 2);
    cases.push_back({"AND with phase-triggered RDEP x3", std::move(m)});
  }
  return cases;
}

}  // namespace

int main() {
  bench::header("A12", "Exactness: SMC vs CTMC uniformization",
                "design decision 3 in DESIGN.md: simulation is validated "
                "against an exact oracle on the Markovian subclass");
  const double t = 6.0;
  int covered = 0, total = 0;

  TextTable table({"model", "query", "exact", "SMC (95% CI)", "covered"});
  table.set_alignment({Align::Left, Align::Left, Align::Right, Align::Right,
                       Align::Left});
  for (Case& c : unreliability_cases()) {
    const double exact = analytic::exact_unreliability(c.model, t);
    smc::AnalysisSettings s = bench::default_settings(t, 40000);
    const smc::KpiReport k = smc::analyze(c.model, s);
    const ConfidenceInterval unrel{1 - k.reliability.point, 1 - k.reliability.hi,
                                   1 - k.reliability.lo, k.reliability.confidence};
    const bool ok = unrel.contains(exact);
    ++total;
    covered += ok ? 1 : 0;
    table.add_row({c.name, "P(fail by " + cell(t, 0) + "y)", cell(exact, 5),
                   bench::ci_cell(unrel, 5), ok ? "yes" : "NO"});
  }
  // Expected-failures query under instant corrective renewal.
  {
    fmt::FaultMaintenanceTree m;
    const auto a = m.add_ebe("a", fmt::DegradationModel::erlang(2, 4.0, 3));
    const auto b = m.add_basic_event("b", Distribution::exponential(0.1));
    m.set_top(m.add_or("top", {a, b}));
    m.set_corrective(fmt::CorrectivePolicy{true, 0.0, 0, 0});
    const double horizon = 10.0;
    const double exact = analytic::exact_expected_failures(m, horizon);
    smc::AnalysisSettings s = bench::default_settings(horizon, 40000);
    const smc::KpiReport k = smc::analyze(m, s);
    const bool ok = k.expected_failures.contains(exact);
    ++total;
    covered += ok ? 1 : 0;
    table.add_row({"series + instant renewal", "E[#failures in 10y]", cell(exact, 4),
                   bench::ci_cell(k.expected_failures, 4), ok ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nCoverage: " << covered << "/" << total
            << " (individual misses at ~5% rate are expected for 95% CIs)\n"
            << "Shape check (>= 4 of 5 covered): " << (covered >= 4 ? "PASS" : "FAIL")
            << "\n";
  return covered >= 4 ? 0 : 1;
}
