// F5 — Expected number of failures per joint-year vs inspection frequency,
// with the per-mode attribution under the current policy.
// Expected shape: monotone decreasing with diminishing returns; the floor is
// set by the undetectable impact-damage mode.
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

int main() {
  bench::header("F5", "Expected failures per joint-year vs inspection frequency",
                "claim C2: failure count analysable; diminishing returns");
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  TextTable t({"inspections/yr", "E[failures]/yr (95% CI)", "reliability(20y)",
               "repairs/yr"});
  t.set_alignment({Align::Right, Align::Right, Align::Right, Align::Right});
  std::vector<double> rates;
  for (double freq : eijoint::cost_curve_frequencies()) {
    const smc::KpiReport k =
        smc::analyze(factory(eijoint::inspections_per_year(freq)), settings);
    rates.push_back(k.failures_per_year.point);
    t.add_row({cell(freq, 1), bench::ci_cell(k.failures_per_year, 4),
               cell(k.reliability.point, 3),
               cell(k.mean_repairs / settings.horizon, 2)});
  }
  t.print(std::cout);

  bool monotone = true;
  for (std::size_t i = 1; i < rates.size(); ++i)
    if (rates[i] > rates[i - 1] * 1.02) monotone = false;  // 2% noise slack
  std::cout << "\nShape check (failure rate nonincreasing in frequency): "
            << (monotone ? "PASS" : "FAIL") << "\n";

  // Attribution under the current policy.
  const fmt::FaultMaintenanceTree current = factory(eijoint::current_policy());
  const smc::KpiReport k = smc::analyze(current, settings);
  std::cout << "\nFailure attribution under current-4x (per joint-year):\n";
  TextTable attr({"failure mode", "failures/yr", "share"});
  attr.set_alignment({Align::Left, Align::Right, Align::Right});
  double total = 0;
  for (double f : k.failures_per_leaf) total += f;
  for (std::size_t i = 0; i < k.failures_per_leaf.size(); ++i) {
    const double rate = k.failures_per_leaf[i] / settings.horizon;
    attr.add_row({current.ebes()[i].name, cell(rate, 4),
                  cell(100.0 * k.failures_per_leaf[i] / total, 1) + "%"});
  }
  attr.print(std::cout);
  return monotone ? 0 : 1;
}
