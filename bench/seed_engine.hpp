// The pre-incremental Monte-Carlo engine, preserved verbatim as the
// benchmark baseline: std::priority_queue event queue, full bottom-up gate
// re-evaluation on every event, name/id lookups in the event loop, and a
// fresh set of state vectors allocated per trajectory.
//
// bench_perf_engine times this against the production engine and first
// cross-checks that both produce bit-identical TrajectoryResults, so the
// reported speedup measures doing the *same work* faster. Not linked into
// the library — benchmark-only code.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "fmt/fmtree.hpp"
#include "sim/fmt_executor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fmtree::bench_seed {

/// The original lazily-cancelled event queue over std::priority_queue, with
/// the exact-fit cancelled-bitmap growth of the seed implementation.
template <typename Payload>
class SeedEventQueue {
public:
  sim::EventHandle schedule(double time, Payload payload) {
    FMTREE_ASSERT(!(time != time), "event time is NaN");
    const sim::EventHandle h{next_seq_++};
    heap_.push(Entry{time, h.seq, std::move(payload)});
    ++live_;
    return h;
  }

  bool cancel(sim::EventHandle h) {
    if (h.seq >= next_seq_) return false;
    const bool inserted = cancelled_.size() <= h.seq ? (grow_cancelled(h.seq), true)
                                                     : !cancelled_[h.seq];
    if (!inserted) return false;
    cancelled_[h.seq] = true;
    if (live_ > 0) --live_;
    return true;
  }

  bool empty() const noexcept { return live_ == 0; }

  struct Event {
    double time;
    sim::EventHandle handle;
    Payload payload;
  };

  Event pop() {
    skip_cancelled();
    FMTREE_ASSERT(!heap_.empty(), "pop on empty event queue");
    Entry top = heap_.top();
    heap_.pop();
    --live_;
    mark_fired(top.seq);
    return Event{top.time, sim::EventHandle{top.seq}, std::move(top.payload)};
  }

  double peek_time() {
    skip_cancelled();
    FMTREE_ASSERT(!heap_.empty(), "peek on empty event queue");
    return heap_.top().time;
  }

private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Payload payload;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void grow_cancelled(std::uint64_t seq) {
    if (cancelled_.size() <= seq)
      cancelled_.resize(static_cast<std::size_t>(seq) + 1, false);
  }

  void mark_fired(std::uint64_t seq) {
    grow_cancelled(seq);
    cancelled_[seq] = true;
  }

  void skip_cancelled() {
    while (!heap_.empty()) {
      const std::uint64_t seq = heap_.top().seq;
      if (seq < cancelled_.size() && cancelled_[seq]) {
        heap_.pop();
      } else {
        break;
      }
    }
  }

  std::priority_queue<Entry> heap_;
  std::vector<bool> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

/// The original FMT executor. Semantically identical to sim::FmtSimulator
/// (same RNG draw order, same event ordering), structured the way the seed
/// was: every settle() re-evaluates the whole tree.
class SeedSimulator {
public:
  explicit SeedSimulator(const fmt::FaultMaintenanceTree& model) : model_(model) {
    model.validate();
    rdeps_by_leaf_.resize(model.num_ebes());
    for (std::size_t r = 0; r < model.rdeps().size(); ++r) {
      for (fmt::NodeId dep : model.rdeps()[r].dependents)
        rdeps_by_leaf_[model.ebe_index(dep)].push_back(static_cast<std::uint32_t>(r));
    }
    spare_of_leaf_.assign(model.num_ebes(), -1);
    for (std::size_t sp = 0; sp < model.spares().size(); ++sp) {
      for (fmt::NodeId child : model.spares()[sp].children)
        spare_of_leaf_[model.ebe_index(child)] = static_cast<std::int32_t>(sp);
    }
  }

  sim::TrajectoryResult run(RandomStream rng, const sim::SimOptions& opts) const {
    struct Ev {
      enum class Kind : std::uint8_t {
        Phase,
        Inspect,
        Replace,
        CorrectiveDone,
        RepairDone
      };
      Kind kind = Kind::Phase;
      std::uint32_t index = 0;
    };

    if (!(opts.horizon > 0)) throw DomainError("simulation horizon must be positive");
    const ft::FaultTree& structure = model_.structure();
    const std::size_t num_leaves = model_.num_ebes();
    const std::size_t num_nodes = structure.node_count();
    const fmt::CorrectivePolicy& corrective = model_.corrective();

    sim::TrajectoryResult result;
    result.horizon = opts.horizon;
    result.repairs_per_leaf.assign(num_leaves, 0);
    result.failures_per_leaf.assign(num_leaves, 0);

    std::vector<int> phase(num_leaves, 1);
    std::vector<double> accel(num_leaves, 1.0);
    std::vector<double> frozen_remaining(num_leaves, 0.0);
    std::vector<double> next_time(num_leaves, 0.0);
    std::vector<sim::EventHandle> next_handle(num_leaves);
    std::vector<bool> leaf_failed(num_leaves, false);
    std::vector<bool> under_repair(num_leaves, false);
    std::vector<sim::EventHandle> repair_handle(num_leaves);
    std::vector<char> node_true(num_nodes, 0);
    SeedEventQueue<Ev> queue;
    bool system_down = false;
    double down_since = 0.0;
    std::optional<sim::EventHandle> corrective_pending;

    const double discount_rate = opts.discount_rate;
    if (discount_rate < 0) throw DomainError("discount rate must be >= 0");
    const auto discount = [&](double now) {
      return discount_rate > 0 ? std::exp(-discount_rate * now) : 1.0;
    };
    const auto discounted_downtime = [&](double a, double b) {
      if (discount_rate <= 0) return corrective.downtime_cost_rate * (b - a);
      return corrective.downtime_cost_rate *
             (std::exp(-discount_rate * a) - std::exp(-discount_rate * b)) /
             discount_rate;
    };

    const auto schedule_phase = [&](std::uint32_t leaf, double now) {
      const fmt::DegradationModel& deg = model_.ebes()[leaf].degradation;
      const double raw = deg.sojourn(phase[leaf]).sample(rng);
      if (accel[leaf] > 0) {
        next_time[leaf] = now + raw / accel[leaf];
        next_handle[leaf] = queue.schedule(next_time[leaf], Ev{Ev::Kind::Phase, leaf});
      } else {
        frozen_remaining[leaf] = raw;
        next_time[leaf] = std::numeric_limits<double>::infinity();
      }
    };

    const auto evaluate_nodes = [&] {
      for (std::uint32_t id = 0; id < num_nodes; ++id) {
        const ft::NodeId node{id};
        if (structure.is_basic(node)) {
          node_true[id] = leaf_failed[structure.basic_index(node)] ? 1 : 0;
          continue;
        }
        const ft::Gate& g = structure.gate(node);
        int count = 0;
        for (ft::NodeId c : g.children) count += node_true[c.value];
        switch (g.type) {
          case ft::GateType::And:
            node_true[id] = count == static_cast<int>(g.children.size()) ? 1 : 0;
            break;
          case ft::GateType::Or:
            node_true[id] = count > 0 ? 1 : 0;
            break;
          case ft::GateType::Voting:
            node_true[id] = count >= g.k ? 1 : 0;
            break;
        }
      }
    };

    const auto spare_factor = [&](std::uint32_t leaf) {
      const std::int32_t sp = spare_of_leaf_[leaf];
      if (sp < 0) return 1.0;
      const fmt::SpareSpec& spec = model_.spares()[static_cast<std::size_t>(sp)];
      for (fmt::NodeId child : spec.children) {
        const auto c = static_cast<std::uint32_t>(model_.ebe_index(child));
        if (!leaf_failed[c]) return c == leaf ? 1.0 : spec.dormancy;
      }
      return 1.0;
    };

    const auto update_rates = [&](double now) {
      if (model_.rdeps().empty() && model_.spares().empty()) return;
      for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf) {
        if (rdeps_by_leaf_[leaf].empty() && spare_of_leaf_[leaf] < 0) continue;
        double desired = spare_factor(leaf);
        for (std::uint32_t r : rdeps_by_leaf_[leaf]) {
          const fmt::RateDependency& dep = model_.rdeps()[r];
          bool active = false;
          if (dep.trigger_phase == 0) {
            active = node_true[dep.trigger.value] != 0;
          } else {
            const auto trig = static_cast<std::uint32_t>(model_.ebe_index(dep.trigger));
            active = phase[trig] >= dep.trigger_phase;
          }
          if (active) desired *= dep.factor;
        }
        if (desired == accel[leaf]) continue;
        if (!leaf_failed[leaf] && !under_repair[leaf]) {
          const double natural = accel[leaf] > 0 ? (next_time[leaf] - now) * accel[leaf]
                                                 : frozen_remaining[leaf];
          if (accel[leaf] > 0) queue.cancel(next_handle[leaf]);
          if (desired > 0) {
            next_time[leaf] = now + natural / desired;
            next_handle[leaf] =
                queue.schedule(next_time[leaf], Ev{Ev::Kind::Phase, leaf});
          } else {
            frozen_remaining[leaf] = natural;
            next_time[leaf] = std::numeric_limits<double>::infinity();
          }
        }
        accel[leaf] = desired;
      }
    };

    const auto renew_leaf = [&](std::uint32_t leaf, double now) {
      if (under_repair[leaf]) {
        queue.cancel(repair_handle[leaf]);
        under_repair[leaf] = false;
      } else if (!leaf_failed[leaf] && accel[leaf] > 0) {
        queue.cancel(next_handle[leaf]);
      }
      phase[leaf] = 1;
      leaf_failed[leaf] = false;
      schedule_phase(leaf, now);
    };

    const auto end_downtime = [&](double now) {
      result.downtime += now - down_since;
      result.cost.downtime += corrective.downtime_cost_rate * (now - down_since);
      result.discounted_cost.downtime += discounted_downtime(down_since, now);
      system_down = false;
      if (corrective_pending) {
        queue.cancel(*corrective_pending);
        corrective_pending.reset();
      }
    };

    const auto apply_fdeps = [&](double) {
      if (model_.fdeps().empty()) return;
      bool changed = true;
      while (changed) {
        changed = false;
        for (const fmt::FunctionalDependency& dep : model_.fdeps()) {
          if (!node_true[dep.trigger.value]) continue;
          for (fmt::NodeId d : dep.dependents) {
            const auto leaf = static_cast<std::uint32_t>(model_.ebe_index(d));
            if (leaf_failed[leaf]) continue;
            if (under_repair[leaf]) {
              queue.cancel(repair_handle[leaf]);
              under_repair[leaf] = false;
            } else if (accel[leaf] > 0) {
              queue.cancel(next_handle[leaf]);
            }
            phase[leaf] = model_.ebes()[leaf].degradation.phases() + 1;
            leaf_failed[leaf] = true;
            changed = true;
          }
        }
        if (changed) evaluate_nodes();
      }
    };

    const auto settle = [&](double now, std::optional<std::uint32_t> cause) {
      evaluate_nodes();
      apply_fdeps(now);
      update_rates(now);
      const bool top_now = node_true[model_.top().value] != 0;
      if (top_now && !system_down) {
        ++result.failures;
        result.first_failure_time = std::min(result.first_failure_time, now);
        const std::uint32_t cause_leaf = cause.value_or(0);
        FMTREE_ASSERT(cause.has_value(), "top event rose without a causing leaf");
        ++result.failures_per_leaf[cause_leaf];
        if (opts.record_failure_log)
          result.failure_log.push_back(sim::FailureRecord{now, cause_leaf});
        result.cost.corrective += corrective.enabled ? corrective.cost : 0.0;
        result.discounted_cost.corrective +=
            corrective.enabled ? corrective.cost * discount(now) : 0.0;
        system_down = true;
        down_since = now;
        if (corrective.enabled) {
          corrective_pending =
              queue.schedule(now + corrective.delay, Ev{Ev::Kind::CorrectiveDone, 0});
        }
      } else if (!top_now && system_down) {
        end_downtime(now);
      }
    };

    for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf) schedule_phase(leaf, 0.0);
    for (std::size_t m = 0; m < model_.inspections().size(); ++m)
      queue.schedule(model_.inspections()[m].first_at,
                     Ev{Ev::Kind::Inspect, static_cast<std::uint32_t>(m)});
    for (std::size_t m = 0; m < model_.replacements().size(); ++m)
      queue.schedule(model_.replacements()[m].first_at,
                     Ev{Ev::Kind::Replace, static_cast<std::uint32_t>(m)});
    evaluate_nodes();
    update_rates(0.0);

    while (!queue.empty() && queue.peek_time() <= opts.horizon) {
      const auto event = queue.pop();
      const double now = event.time;
      ++result.events;
      switch (event.payload.kind) {
        case Ev::Kind::Phase: {
          const std::uint32_t leaf = event.payload.index;
          ++phase[leaf];
          const fmt::DegradationModel& deg = model_.ebes()[leaf].degradation;
          if (phase[leaf] > deg.phases()) {
            leaf_failed[leaf] = true;
            settle(now, leaf);
          } else {
            schedule_phase(leaf, now);
            settle(now, std::nullopt);
          }
          break;
        }
        case Ev::Kind::Inspect: {
          const fmt::InspectionModule& mod = model_.inspections()[event.payload.index];
          ++result.inspections;
          result.cost.inspection += mod.cost;
          result.discounted_cost.inspection += mod.cost * discount(now);
          for (fmt::NodeId target : mod.targets) {
            const auto leaf = static_cast<std::uint32_t>(model_.ebe_index(target));
            const fmt::ExtendedBasicEvent& e = model_.ebes()[leaf];
            if (leaf_failed[leaf]) continue;
            if (under_repair[leaf]) continue;
            if (phase[leaf] < e.degradation.threshold_phase()) continue;
            if (mod.detection_probability < 1.0 &&
                !rng.bernoulli(mod.detection_probability)) {
              continue;
            }
            ++result.repairs;
            ++result.repairs_per_leaf[leaf];
            result.cost.repair += e.repair.cost;
            result.discounted_cost.repair += e.repair.cost * discount(now);
            if (e.repair.duration > 0) {
              queue.cancel(next_handle[leaf]);
              under_repair[leaf] = true;
              repair_handle[leaf] =
                  queue.schedule(now + e.repair.duration, Ev{Ev::Kind::RepairDone, leaf});
            } else {
              renew_leaf(leaf, now);
            }
          }
          settle(now, std::nullopt);
          queue.schedule(now + mod.period, Ev{Ev::Kind::Inspect, event.payload.index});
          break;
        }
        case Ev::Kind::Replace: {
          const fmt::ReplacementModule& mod = model_.replacements()[event.payload.index];
          ++result.replacements;
          result.cost.replacement += mod.cost;
          result.discounted_cost.replacement += mod.cost * discount(now);
          for (fmt::NodeId target : mod.targets)
            renew_leaf(static_cast<std::uint32_t>(model_.ebe_index(target)), now);
          settle(now, std::nullopt);
          queue.schedule(now + mod.period, Ev{Ev::Kind::Replace, event.payload.index});
          break;
        }
        case Ev::Kind::RepairDone: {
          const std::uint32_t leaf = event.payload.index;
          under_repair[leaf] = false;
          phase[leaf] = 1;
          schedule_phase(leaf, now);
          settle(now, std::nullopt);
          break;
        }
        case Ev::Kind::CorrectiveDone: {
          corrective_pending.reset();
          for (std::uint32_t leaf = 0; leaf < num_leaves; ++leaf) renew_leaf(leaf, now);
          settle(now, std::nullopt);
          break;
        }
      }
    }

    if (system_down) {
      result.downtime += opts.horizon - down_since;
      result.cost.downtime += corrective.downtime_cost_rate * (opts.horizon - down_since);
      result.discounted_cost.downtime += discounted_downtime(down_since, opts.horizon);
    }
    return result;
  }

private:
  const fmt::FaultMaintenanceTree& model_;
  std::vector<std::vector<std::uint32_t>> rdeps_by_leaf_;
  std::vector<std::int32_t> spare_of_leaf_;
};

}  // namespace fmtree::bench_seed
