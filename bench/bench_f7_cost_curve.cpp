// F7 — Expected yearly cost vs inspection frequency, with breakdown.
// Expected shape: U-shaped curve; failure costs dominate on the left,
// inspection+repair costs on the right; the minimum sits at/near the current
// 4x-per-year policy (abstract claim C4).
#include <chrono>
#include <cstring>

#include "batch/result_cache.hpp"
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "maintenance/optimizer.hpp"

using namespace fmtree;

namespace {

bool same_bits(const ConfidenceInterval& a, const ConfidenceInterval& b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Bitwise equality of the KPI fields the curve reports — the cache-identity
/// invariant (see batch/result_cache.hpp) promises exactly this.
bool same_bits(const smc::KpiReport& a, const smc::KpiReport& b) {
  return same_bits(a.cost_per_year, b.cost_per_year) &&
         same_bits(a.total_cost, b.total_cost) &&
         same_bits(a.failures_per_year, b.failures_per_year) &&
         std::memcmp(&a.mean_cost, &b.mean_cost, sizeof a.mean_cost) == 0 &&
         a.trajectories == b.trajectories;
}

}  // namespace

int main() {
  bench::header("F7", "Yearly cost vs inspection frequency (breakdown)",
                "claim C4: current policy close to cost-optimal; extra "
                "inspections cost more than the failures they avoid");
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const auto candidates = maintenance::inspection_frequency_candidates(
      eijoint::current_policy(), eijoint::cost_curve_frequencies());
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  // The curve runs through the batch sweep engine with a result cache: the
  // first pass simulates, the second is served from the cache bit-for-bit.
  using clock = std::chrono::steady_clock;
  batch::ResultCache cache;
  const auto cold_start = clock::now();
  const maintenance::SweepResult sweep =
      maintenance::sweep_policies(factory, candidates, settings, &cache);
  const double cold_s = std::chrono::duration<double>(clock::now() - cold_start).count();
  const auto warm_start = clock::now();
  const maintenance::SweepResult warm =
      maintenance::sweep_policies(factory, candidates, settings, &cache);
  const double warm_s = std::chrono::duration<double>(clock::now() - warm_start).count();

  TextTable t({"inspections/yr", "inspection", "repairs", "corrective", "downtime",
               "total/yr (95% CI)"});
  t.set_alignment({Align::Right, Align::Right, Align::Right, Align::Right,
                   Align::Right, Align::Right});
  for (std::size_t i = 0; i < sweep.curve.size(); ++i) {
    const maintenance::PolicyEvaluation& e = sweep.curve[i];
    const fmt::CostBreakdown per_year = e.kpis.mean_cost / settings.horizon;
    std::string total = bench::ci_cell(e.kpis.cost_per_year, 0);
    if (i == sweep.best_index) total += "  <-- optimum";
    t.add_row({cell(e.policy.inspections_per_year(), 1), cell(per_year.inspection, 0),
               cell(per_year.repair, 0), cell(per_year.corrective, 0),
               cell(per_year.downtime, 0), std::move(total)});
  }
  t.print(std::cout);

  const double best_freq = sweep.best().policy.inspections_per_year();
  double current_cost = 0;
  for (const auto& e : sweep.curve)
    if (e.policy.inspections_per_year() == 4.0) current_cost = e.cost_per_year();
  const double best_cost = sweep.best().cost_per_year();
  const bool near_optimal = current_cost <= 1.15 * best_cost;
  std::cout << "\nOptimum: " << cell(best_freq, 1) << " inspections/yr at "
            << cell(best_cost, 0) << "/yr; current policy (4x) costs "
            << cell(current_cost, 0) << "/yr ("
            << cell(100.0 * (current_cost / best_cost - 1.0), 1)
            << "% above optimum).\n"
            << "Shape check (current within 15% of optimum): "
            << (near_optimal ? "PASS" : "FAIL") << "\n";

  bool cached_identical = warm.curve.size() == sweep.curve.size();
  for (std::size_t i = 0; cached_identical && i < sweep.curve.size(); ++i)
    cached_identical = same_bits(sweep.curve[i].kpis, warm.curve[i].kpis);
  const auto st = cache.stats();
  std::cout << "\nCache replay: cold " << cell(cold_s, 2) << "s, warm "
            << cell(warm_s, 3) << "s (" << st.hits << " hits, " << st.misses
            << " misses); bitwise identical: " << (cached_identical ? "PASS" : "FAIL")
            << "\n";
  return near_optimal && cached_identical ? 0 : 1;
}
