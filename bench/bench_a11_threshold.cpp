// A11 — Ablation: placement of the inspection threshold phase.
// The later degradation becomes visible, the shorter the warning window and
// the more failures escape periodic inspection.
#include "bench/common.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"

using namespace fmtree;

int main() {
  bench::header("A11", "Ablation: inspection threshold of 'lipping' (6 phases)",
                "threshold placement governs inspection effectiveness");
  const smc::AnalysisSettings settings = bench::default_settings(20.0, 8000);

  TextTable t({"threshold phase", "mean warning (y)", "lipping failures/yr",
               "lipping repairs/yr", "system failures/yr"});
  t.set_alignment({Align::Right, Align::Right, Align::Right, Align::Right,
                   Align::Right});
  std::vector<double> rates;
  for (int threshold : {1, 2, 3, 4, 5, 6, 7}) {  // 7 = past the end: invisible
    eijoint::EiJointParameters p = eijoint::EiJointParameters::defaults();
    p.lipping.threshold = threshold;
    const auto model = eijoint::build_ei_joint(p, eijoint::current_policy());
    const smc::KpiReport k = smc::analyze(model, settings);
    const std::size_t idx = model.ebe_index(*model.find("lipping"));
    const double rate = k.failures_per_leaf[idx] / settings.horizon;
    rates.push_back(rate);
    const double warning =
        threshold <= p.lipping.phases
            ? p.lipping.mean_ttf * (p.lipping.phases - threshold + 1) /
                  p.lipping.phases
            : 0.0;
    t.add_row({threshold <= p.lipping.phases ? cell(threshold) : "invisible",
               cell(warning, 2), cell(rate, 4),
               cell(k.repairs_per_leaf[idx] / settings.horizon, 2),
               cell(k.failures_per_year.point, 4)});
  }
  t.print(std::cout);

  // Nondecreasing in threshold (with small Monte-Carlo slack).
  bool monotone = true;
  for (std::size_t i = 1; i < rates.size(); ++i)
    if (rates[i] + 0.002 < rates[i - 1]) monotone = false;
  std::cout << "\nShape check (later threshold => more escaped failures): "
            << (monotone ? "PASS" : "FAIL") << "\n";
  return monotone ? 0 : 1;
}
