// The EI-joint case study, end to end: build the fault maintenance tree of
// the electrically insulated railway joint under the current maintenance
// policy, and compute every KPI the DSN'16 study reports — reliability,
// expected number of failures (with per-mode attribution), availability and
// cost — plus the classic static-analysis view (importance measures).
//
// Runs through the fmtree::Analysis facade with telemetry enabled, so the
// end of the run can also show what the engine did (trajectory and event
// counts, phase timings) — the same data `fmtree analyze --metrics/--trace`
// exports as JSON.
#include <iostream>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "fmtree/analysis.hpp"
#include "ft/importance.hpp"
#include "util/table.hpp"

using namespace fmtree;

int main() {
  const auto params = eijoint::EiJointParameters::defaults();
  fmt::FaultMaintenanceTree model =
      eijoint::build_ei_joint(params, eijoint::current_policy());

  std::cout << "EI-joint FMT: " << model.num_ebes() << " failure modes, "
            << model.structure().gates().size() << " gates, "
            << model.rdeps().size() << " rate dependencies\n"
            << "Policy: quarterly inspections + corrective renewal\n\n";

  // ---- Full FMT analysis (statistical model checking) ----------------------
  Analysis study(std::move(model));
  study.horizon(20.0).trajectories(20000).seed(1).enable_metrics().enable_tracing();
  const smc::KpiReport k = study.kpis();
  const double horizon = study.settings().horizon;

  std::cout << "KPIs over a 20-year horizon (" << k.trajectories << " runs):\n";
  TextTable kpis({"KPI", "estimate", "95% CI"});
  auto ci = [](const ConfidenceInterval& c, int d) {
    return "[" + cell(c.lo, d) + ", " + cell(c.hi, d) + "]";
  };
  kpis.add_row({"reliability R(20y)", cell(k.reliability.point, 4),
                ci(k.reliability, 4)});
  kpis.add_row({"expected failures / year", cell(k.failures_per_year.point, 4),
                ci(k.failures_per_year, 4)});
  kpis.add_row({"availability", cell(k.availability.point, 6),
                ci(k.availability, 6)});
  kpis.add_row({"cost / year", cell(k.cost_per_year.point, 1),
                ci(k.cost_per_year, 1)});
  kpis.print(std::cout);

  std::cout << "\nCost breakdown per year:\n";
  const fmt::CostBreakdown per_year = k.mean_cost / horizon;
  TextTable costs({"component", "euro/yr"});
  costs.set_alignment({Align::Left, Align::Right});
  costs.add_row({"inspections", cell(per_year.inspection, 1)});
  costs.add_row({"condition-based repairs", cell(per_year.repair, 1)});
  costs.add_row({"corrective (failures)", cell(per_year.corrective, 1)});
  costs.add_row({"downtime", cell(per_year.downtime, 1)});
  costs.print(std::cout);

  std::cout << "\nFailure attribution (per joint-year):\n";
  TextTable attr({"mode", "failures/yr", "repairs/yr"});
  attr.set_alignment({Align::Left, Align::Right, Align::Right});
  for (std::size_t i = 0; i < study.model().num_ebes(); ++i) {
    attr.add_row({study.model().ebes()[i].name,
                  cell(k.failures_per_leaf[i] / horizon, 4),
                  cell(k.repairs_per_leaf[i] / horizon, 3)});
  }
  attr.print(std::cout);

  // ---- What the engine did (telemetry of the session) ----------------------
  std::cout << "\nEngine telemetry (enabled sinks never change a result bit):\n";
  TextTable tel({"metric", "value"});
  tel.set_alignment({Align::Left, Align::Right});
  for (const char* name : {"smc.trajectories", "smc.events", "smc.failures",
                           "smc.inspections", "smc.repairs"}) {
    tel.add_row({name, std::to_string(study.metrics().counter_value(name))});
  }
  tel.print(std::cout);
  std::cout << "(full export: study.metrics_json() / study.trace_json())\n";

  // ---- Classic static fault-tree view (maintenance ignored) -----------------
  std::cout << "\nStatic view at a 10-year mission (no maintenance), importance:\n";
  TextTable imp({"mode", "P(fail by 10y)", "Birnbaum", "Fussell-Vesely"});
  imp.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right});
  for (const ft::Importance& i :
       ft::importance_measures(study.model().structure(), 10.0)) {
    imp.add_row({i.name, cell(i.probability, 3), cell(i.birnbaum, 3),
                 cell(i.fussell_vesely, 3)});
  }
  imp.print(std::cout);
  std::cout << "\n(The static view motivates why maintenance modelling matters:\n"
               " without it, every detectable mode looks equally doomed.)\n";
  return 0;
}
