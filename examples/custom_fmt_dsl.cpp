// Authoring fault maintenance trees in the text format: parse an .fmt model
// of a water-pumping station, export the structure as Graphviz, and analyse
// two maintenance variants — no C++ model-building code needed.
#include <iostream>

#include "fmt/parser.hpp"
#include "ft/dot.hpp"
#include "smc/kpi.hpp"
#include "util/table.hpp"

using namespace fmtree;

namespace {

// A pumping station: two redundant pumps (1-of-2 must survive, so the
// station fails when both fail = VOT 2/2), a shared control unit, and pipe
// corrosion. Pumps wear visibly; the controller fails abruptly.
const char* kStation = R"(
  toplevel Station;
  Station or PumpsDown Controller Corrosion;
  PumpsDown vot 2 PumpA PumpB;

  PumpA ebe phases=4 mean=6  threshold=3 repair_cost=400 repair=overhaul;
  PumpB ebe phases=4 mean=6  threshold=3 repair_cost=400 repair=overhaul;
  Corrosion ebe phases=5 mean=25 threshold=3 repair_cost=1500 repair=recoat;
  Controller be exp(0.04);

  # A failed pump overloads the survivor.
  rdep Overload factor=2 trigger=PumpA targets PumpB;
  rdep Overload2 factor=2 trigger=PumpB targets PumpA;

  corrective cost=20000 delay=0.05 downtime_rate=100000;
)";

}  // namespace

int main() {
  std::cout << "Parsing the station model from its .fmt text...\n";
  const fmt::FaultMaintenanceTree base = fmt::parse_fmt(kStation);
  std::cout << "  " << base.num_ebes() << " leaves, "
            << base.structure().gates().size() << " gates, " << base.rdeps().size()
            << " rate dependencies\n\n";

  std::cout << "Graphviz of the structure:\n"
            << ft::to_dot(base.structure(), "station") << "\n";

  // Compare maintenance variants by appending module statements to the text.
  const std::string base_text(kStation);
  const std::string with_inspections =
      base_text + "inspection Rounds period=0.25 cost=80 targets all;\n";
  const std::string with_renewal =
      with_inspections + "replacement Overhaul period=10 cost=9000 targets all;\n";
  // Design variant: run one pump and keep the other as a cold standby
  // (SPARE gate) instead of active-active with overload RDEPs.
  std::string standby = with_inspections;
  const auto replace_all_in = [](std::string& text, const std::string& from,
                                 const std::string& to) {
    for (std::size_t pos = 0; (pos = text.find(from, pos)) != std::string::npos;
         pos += to.size())
      text.replace(pos, from.size(), to);
  };
  replace_all_in(standby, "PumpsDown vot 2 PumpA PumpB;",
                 "PumpsDown spare dormancy=0.1 PumpA PumpB;");
  replace_all_in(standby, "rdep Overload factor=2 trigger=PumpA targets PumpB;", "");
  replace_all_in(standby, "rdep Overload2 factor=2 trigger=PumpB targets PumpA;", "");

  smc::AnalysisSettings settings;
  settings.horizon = 15.0;
  settings.trajectories = 20000;
  settings.seed = 3;

  TextTable t({"variant", "R(15y)", "failures/yr", "cost/yr"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right});
  for (const auto& [name, text] :
       {std::pair<const char*, const std::string*>{"corrective only", &base_text},
        {"quarterly rounds", &with_inspections},
        {"rounds + 10y overhaul", &with_renewal},
        {"cold-standby pumps", &standby}}) {
    const fmt::FaultMaintenanceTree model = fmt::parse_fmt(*text);
    const smc::KpiReport k = smc::analyze(model, settings);
    t.add_row({name, cell(k.reliability.point, 3), cell(k.failures_per_year.point, 4),
               cell(k.cost_per_year.point, 0)});
  }
  t.print(std::cout);
  std::cout << "\nThe standby design keeps the second pump almost unworn while\n"
               "it waits, trading throughput for reliability.\n";

  std::cout << "\nRound-trip check: serializing and re-parsing preserves the "
               "model:\n"
            << (fmt::to_text(fmt::parse_fmt(fmt::to_text(base))) == fmt::to_text(base)
                    ? "  stable fixpoint reached - OK\n"
                    : "  MISMATCH\n");
  return 0;
}
