# A corridor policy for fleet runs: one shared track crew sweeps the line
# twice a year, paying repairs from a corridor-level budget that refills
# annually. Written for `fmtree fleet --policy`, where the same script is
# applied to every joint and the fleet KPI table reports the crew's
# utilisation against its visit capacity and the summed budget burn.
#
#   fmtree fleet models/ei_joint.fmt --joints 25 \
#       --policy examples/policies/shared_crew.mpl --crews 1
#
# The per-visit cost is lower than the standalone 35-per-visit figure:
# a crew working the corridor end to end amortises track access across
# neighbouring joints instead of mobilising per joint.
policy "shared-crew";

crew 1;

budget corridor = 800 refill 800 every 1;

calendar sweep every 0.5 offset 0.5 cost 25 targets all;

rule sweep {
  if phase >= threshold and budget(corridor) >= 80
    then repair, spend(corridor, 80);
  # Budget dry: only components on their last phase before failure.
  if phase >= phases then repair;
}
