# Seasonal inspection with a yearly maintenance budget: monthly visits that
# only happen outside the winter possession freeze (months 11..12 and the
# first two, as fractions of the year cycle), paying repairs from a budget
# that refills every year. When the budget is exhausted, only components at
# their last phase before failure are repaired.
policy "seasonal-budgeted";

budget opex = 1500 refill 1500 every 1;

# Active from early March to late October (window is a fraction of the
# 1-year cycle); out-of-window visits are skipped silently at no cost.
calendar monthly every 0.0833 offset 0.25 cost 18
  window 0.18..0.82 of 1 targets all;

rule monthly {
  if phase >= threshold and budget(opex) >= 100
    then repair, spend(opex, 100);
  # Budget dry: triage — only components about to fail get attention.
  if phase >= phases and budget(opex) < 100 then repair;
}
