# The paper's current EI-joint policy, written as a script: quarterly
# visits, every inspectable component, repair at the detection threshold.
#
# This is the scripted twin of the built-in `inspection` module in
# models/ei_joint.fmt — same period, offset, visit cost and target list —
# and it produces bitwise-identical KPIs to the built-in policy on either
# engine at any thread count (policy evaluation draws no random numbers;
# the repair bookkeeping is the same code path).
policy "4x-periodic";

calendar quarterly every 0.25 offset 0.25 cost 35 targets all;

rule quarterly {
  if phase >= threshold then repair;
}
