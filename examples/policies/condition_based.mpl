# Condition-based maintenance for the EI joint, and the scripted scenario
# that beats every periodic policy on the cost curve: a cheap narrow check
# on the fast-degrading components plus a rare full visit for the slow
# mechanical ones.
#
# The built-in policy pays the full 35-per-visit track access four times a
# year to look at all ten components — but only lipping, contamination and
# joint batter degrade on a sub-year scale (and joint batter accelerates
# lipping and glue degradation through the rate dependencies, so catching
# it early matters twice). The slow components (bolts, fishplate, glue,
# endpost) spend years inside their detectable window, so a two-year full
# visit loses essentially no detection coverage on them.
#
#   fmtree sweep models/ei_joint.fmt --policy examples/policies/condition_based.mpl \
#       --frequencies 0,0.5,1,2,3,4,6,8,12,24
policy "condition-based";

# Frequent narrow check: the three fast movers only, at a fraction of the
# full-visit cost.
calendar electrical every 0.25 offset 0.25 cost 12
  targets lipping, contamination, joint_batter;

rule electrical {
  if phase >= threshold then repair;
}

# Rare wide visit covering every inspectable component.
calendar mechanical every 2 offset 1 cost 35 targets all;

rule mechanical {
  if phase >= threshold then repair;
}
