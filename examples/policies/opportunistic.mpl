# Opportunistic maintenance with a crew cap: a two-person crew visits twice
# a year; degraded components are repaired at the threshold, and when a
# repair already happened this round (the crew is on site with the track
# closed anyway) near-threshold components are pulled forward one phase.
policy "opportunistic";

crew 2;

calendar biannual every 0.5 offset 0.5 cost 35 targets all;

rule biannual {
  if phase >= threshold then repair;
  # The round already repaired something: extend the same possession to
  # anything within one phase of its threshold.
  if repairs > 0 and phase >= threshold - 1 then repair;
}
