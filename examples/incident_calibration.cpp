// The data pipeline: generate a synthetic incident-registration database and
// expert-elicitation datasets from a ground-truth model, fit degradation
// parameters from the elicited durations, and validate the calibrated model
// against a held-out incident database — the substitute for the paper's
// ProRail data sources (see DESIGN.md, Substitutions).
#include <fstream>
#include <iostream>

#include "data/estimate.hpp"
#include "data/generator.hpp"
#include "data/validate.hpp"
#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "util/table.hpp"

using namespace fmtree;

int main() {
  const fmt::FaultMaintenanceTree truth = eijoint::build_ei_joint(
      eijoint::EiJointParameters::defaults(), eijoint::current_policy());

  // 1. "Incident registration": a fleet of joints observed for a decade.
  const data::IncidentDatabase incidents =
      data::generate_incidents(truth, /*num_assets=*/2000, /*years=*/10.0, 2016);
  std::cout << "Incident database: " << incidents.size() << " failures over "
            << incidents.exposure() << " joint-years ("
            << cell(incidents.failure_rate(), 4) << "/joint-yr)\n\n";
  std::cout << "Incidents by attributed mode:\n";
  TextTable modes({"mode", "incidents", "rate/joint-yr (95% CI)"});
  modes.set_alignment({Align::Left, Align::Right, Align::Right});
  for (const auto& [mode, count] : incidents.counts_by_mode()) {
    const data::RateEstimate r = data::estimate_rate(count, incidents.exposure());
    modes.add_row({mode, cell(count),
                   cell(r.rate, 4) + " [" + cell(r.lo, 4) + ", " + cell(r.hi, 4) + "]"});
  }
  modes.print(std::cout);

  // Persist / reload round-trip, as a real study would.
  {
    std::ofstream out("incidents.csv");
    incidents.save_csv(out);
  }
  std::cout << "\n(wrote incidents.csv)\n";

  // 2. "Expert interviews": per-mode degradation durations, fitted to
  //    Erlang phase models.
  std::cout << "\nFitting 'lipping' from 2000 elicited degradation histories:\n";
  const auto samples = data::elicit_degradation(truth, *truth.find("lipping"), 2000, 7);
  const fmt::DegradationModel fitted = data::fit_degradation(samples);
  const fmt::DegradationModel& real = truth.ebe(*truth.find("lipping")).degradation;
  std::cout << "  true:   " << real.phases() << " phases, mean "
            << cell(real.mean_time_to_failure(), 2) << "y, threshold phase "
            << real.threshold_phase() << "\n"
            << "  fitted: " << fitted.phases() << " phases, mean "
            << cell(fitted.mean_time_to_failure(), 2) << "y, threshold phase "
            << fitted.threshold_phase() << "\n";

  // 3. Validation against a held-out database (fresh seed).
  const data::IncidentDatabase holdout =
      data::generate_incidents(truth, 2000, 10.0, 40407);
  smc::AnalysisSettings settings;
  settings.trajectories = 10000;
  settings.seed = 99;
  const data::ValidationReport report =
      data::validate_against(truth, holdout, settings);
  std::cout << "\nValidation against a held-out incident database:\n"
            << "  observed:  " << cell(report.system.observed.rate, 4)
            << " failures/joint-yr [" << cell(report.system.observed.lo, 4) << ", "
            << cell(report.system.observed.hi, 4) << "]\n"
            << "  predicted: " << cell(report.system.predicted.point, 4) << " ["
            << cell(report.system.predicted.lo, 4) << ", "
            << cell(report.system.predicted.hi, 4) << "]\n"
            << "  verdict:   "
            << (report.system.intervals_overlap ? "model matches the field data"
                                                : "MISMATCH")
            << "\n";
  return report.system.intervals_overlap ? 0 : 1;
}
