// Maintenance optimization: sweep the inspection frequency of the EI-joint,
// print the yearly cost curve, and locate the cost-optimal policy — the
// analysis behind the paper's conclusion that the current policy is close
// to cost-optimal.
#include <iostream>

#include "eijoint/model.hpp"
#include "eijoint/scenarios.hpp"
#include "maintenance/optimizer.hpp"
#include "util/table.hpp"

using namespace fmtree;

int main() {
  const auto factory = eijoint::ei_joint_factory(eijoint::EiJointParameters::defaults());
  const auto candidates = maintenance::inspection_frequency_candidates(
      eijoint::current_policy(), {0, 0.5, 1, 2, 3, 4, 6, 8, 12});

  smc::AnalysisSettings settings;
  settings.horizon = 20.0;
  settings.trajectories = 10000;
  settings.seed = 7;

  std::cout << "Sweeping inspection frequency (" << candidates.size()
            << " candidates, " << settings.trajectories << " runs each)...\n\n";
  const maintenance::SweepResult sweep =
      maintenance::sweep_policies(factory, candidates, settings);

  TextTable t({"policy", "failures/yr", "planned cost/yr", "unplanned cost/yr",
               "total/yr"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right,
                   Align::Right});
  for (std::size_t i = 0; i < sweep.curve.size(); ++i) {
    const auto& e = sweep.curve[i];
    const fmt::CostBreakdown py = e.kpis.mean_cost / settings.horizon;
    t.add_row({e.policy.name + (i == sweep.best_index ? "  <== optimum" : ""),
               cell(e.kpis.failures_per_year.point, 4),
               cell(py.inspection + py.repair + py.replacement, 0),
               cell(py.corrective + py.downtime, 0),
               cell(e.kpis.cost_per_year.point, 0)});
  }
  t.print(std::cout);

  const auto& best = sweep.best();
  std::cout << "\nCost-optimal policy: " << best.policy.name << " at "
            << cell(best.cost_per_year(), 0) << "/yr.\n"
            << "Increasing inspections beyond the optimum still reduces\n"
            << "failures, but the added inspection and repair spend outweighs\n"
            << "the avoided failure cost - the paper's central trade-off.\n";
  return 0;
}
