// Quickstart: build a small fault maintenance tree, analyse its KPIs through
// the fmtree::Analysis facade, and compare maintenance strategies.
//
// The system is a two-component pump skid: the pump wears through 4
// degradation phases (visible from phase 3, repairable by overhaul), the
// controller fails abruptly (undetectable). The system fails when either
// fails.
#include <iostream>
#include <utility>
#include <vector>

#include "fmtree/analysis.hpp"
#include "util/table.hpp"

using namespace fmtree;

namespace {

fmt::FaultMaintenanceTree build_pump_skid(double inspections_per_year) {
  fmt::FaultMaintenanceTree model;

  // Pump: Erlang(4) wear over a mean of 8 years; degradation becomes visible
  // at phase 3; an overhaul (cost 500) restores it to new.
  const auto pump = model.add_ebe(
      "pump", fmt::DegradationModel::erlang(/*phases=*/4, /*mean_ttf=*/8.0,
                                            /*threshold_phase=*/3),
      fmt::RepairSpec{"overhaul", 500.0});

  // Controller: memoryless failure, mean 20 years, nothing to inspect.
  const auto controller =
      model.add_basic_event("controller", Distribution::exponential(1.0 / 20.0));

  model.set_top(model.add_or("skid_failure", {pump, controller}));

  if (inspections_per_year > 0) {
    model.add_inspection(fmt::InspectionModule{
        "visual", 1.0 / inspections_per_year, -1.0, /*cost=*/50.0, {pump}});
  }

  // A failure costs 10000 and takes ~2 weeks to fix.
  model.set_corrective(fmt::CorrectivePolicy{true, 0.04, 10000.0, 0.0});
  return model;
}

}  // namespace

int main() {
  // This first block is the README's opening sample: one session object, the
  // settings chained onto it, every KPI from a single call.
  Analysis study(build_pump_skid(/*inspections_per_year=*/4.0));
  study.horizon(10.0).trajectories(20000).seed(42);
  const smc::KpiReport k = study.kpis();
  std::cout << "With quarterly inspections: R(10y) = " << k.reliability.point
            << ", cost/yr = " << k.cost_per_year.point << "\n\n";

  // Comparing strategies = one session per candidate model, same settings.
  // submit() enqueues each candidate on the session's analysis service and
  // returns immediately, so the four studies run concurrently; wait() then
  // collects each report, bit-identical to what blocking kpis() would return.
  std::vector<std::pair<double, PendingKpis>> pending;
  std::vector<Analysis> sessions;  // keep each service alive until wait()
  for (double freq : {0.0, 1.0, 2.0, 4.0}) {
    Analysis candidate(build_pump_skid(freq));
    candidate.horizon(10.0).trajectories(20000).seed(42);
    pending.emplace_back(freq, candidate.submit());
    sessions.push_back(std::move(candidate));
  }

  TextTable table({"strategy", "reliability(10y)", "E[failures]/y", "availability",
                   "cost/yr"});
  table.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right,
                       Align::Right});
  for (auto& [freq, handle] : pending) {
    const smc::KpiReport kpis = handle.wait();
    table.add_row({freq == 0 ? "no inspections"
                             : std::to_string(static_cast<int>(freq)) + "x/year",
                   cell(kpis.reliability.point, 4),
                   cell(kpis.failures_per_year.point, 4),
                   cell(kpis.availability.point, 5),
                   cell(kpis.cost_per_year.point, 0)});
  }
  std::cout << "Pump-skid FMT, 10-year horizon, " << 20000 << " runs:\n\n";
  table.print(std::cout);
  std::cout << "\nMore inspections catch pump wear before it fails; the\n"
               "controller's memoryless failures set the floor.\n";
  return 0;
}
