// Maintenance planning for the pneumatic compressor: compare the two-tier
// service plans, rank components by both static importance and simulated
// attribution, and use a paired (common-random-numbers) comparison to decide
// a close call that independent runs cannot resolve.
#include <iostream>

#include "compressor/compressor.hpp"
#include "ft/importance.hpp"
#include "smc/compare.hpp"
#include "smc/kpi.hpp"
#include "util/table.hpp"

using namespace fmtree;

int main() {
  const auto params = compressor::CompressorParameters::defaults();
  smc::AnalysisSettings settings;
  settings.horizon = 20.0;
  settings.trajectories = 10000;
  settings.seed = 11;

  // ---- Plan comparison -------------------------------------------------------
  std::cout << "Compressor maintenance plans (20-year horizon):\n\n";
  TextTable t({"plan", "failures/yr", "availability", "cost/yr"});
  t.set_alignment({Align::Left, Align::Right, Align::Right, Align::Right});
  for (const compressor::CompressorPlan& plan : compressor::compressor_plans()) {
    const smc::KpiReport k =
        smc::analyze(compressor::build_compressor(params, plan), settings);
    t.add_row({plan.name, cell(k.failures_per_year.point, 4),
               cell(k.availability.point, 5), cell(k.cost_per_year.point, 0)});
  }
  t.print(std::cout);

  // ---- Who drives the failures? ----------------------------------------------
  const auto current = compressor::build_compressor(params, compressor::current_plan());
  const smc::KpiReport k = smc::analyze(current, settings);
  std::cout << "\nComponent ranking under the current plan:\n";
  TextTable rank({"component", "failures/yr (simulated)", "Birnbaum (static)"});
  rank.set_alignment({Align::Left, Align::Right, Align::Right});
  const auto importances = ft::importance_measures(current.structure(), 10.0);
  for (std::size_t i = 0; i < current.num_ebes(); ++i) {
    rank.add_row({current.ebes()[i].name,
                  cell(k.failures_per_leaf[i] / settings.horizon, 4),
                  cell(importances[i].birnbaum, 3)});
  }
  rank.print(std::cout);
  std::cout << "\n(The static ranking ignores maintenance: it overrates the\n"
               " consumables that the minor service actually keeps in check.)\n";

  // ---- A close call, settled with common random numbers -----------------------
  compressor::CompressorPlan faster_major = compressor::current_plan();
  faster_major.name = "major-18mo";
  faster_major.major_period = 1.5;
  const auto variant = compressor::build_compressor(params, faster_major);
  const smc::PairedComparison cmp = smc::compare_models(variant, current, settings);
  std::cout << "\nIs a major inspection every 18 months worth it? (paired runs)\n"
            << "  cost difference (18mo - 24mo): " << cell(cmp.cost_diff.point, 0)
            << " [" << cell(cmp.cost_diff.lo, 0) << ", " << cell(cmp.cost_diff.hi, 0)
            << "] per 20 years\n"
            << "  verdict: "
            << (cmp.cost_significantly_different()
                    ? (cmp.cost_diff.point > 0 ? "no - it adds cost" : "yes - it saves")
                    : "statistically indistinguishable at this budget")
            << "\n";
  return 0;
}
