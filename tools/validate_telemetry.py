#!/usr/bin/env python3
"""Validate fmtree telemetry JSON against tools/telemetry_schema.json.

Usage: validate_telemetry.py <metrics|trace> <file.json> [schema.json]
                             [--require NAME ...]

Self-contained interpreter for the small JSON-Schema subset the telemetry
schemas use (type / const / required / properties / additionalProperties /
items / minimum), so CI needs nothing beyond the Python standard library.

--require NAME ... (metrics documents only) additionally demands that each
named metric is present in the counters/gauges/histograms maps — the drift
tripwire for instrumentation CI depends on (e.g. fault.injected,
sweep.retries, sweep.job_failures, cache.corrupt_entries).

Exit code 0 = valid, 1 = invalid, 2 = usage/IO error.
"""

import json
import os
import sys


def type_ok(value, expected):
    types = expected if isinstance(expected, list) else [expected]
    for t in types:
        if t == "object" and isinstance(value, dict):
            return True
        if t == "array" and isinstance(value, list):
            return True
        if t == "string" and isinstance(value, str):
            return True
        # bool is an int subclass in Python; JSON booleans are never numbers.
        if t == "integer" and isinstance(value, int) and not isinstance(value, bool):
            return True
        if (t == "number" and isinstance(value, (int, float))
                and not isinstance(value, bool)):
            return True
        if t == "null" and value is None:
            return True
        if t == "boolean" and isinstance(value, bool):
            return True
    return False


def validate(value, schema, path, errors):
    if "type" in schema and not type_ok(value, schema["type"]):
        errors.append(f"{path}: expected type {schema['type']}, "
                      f"got {type(value).__name__}")
        return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}.{key}", errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def check_required_metrics(document, names, path, errors):
    """Every name must appear in one of the metric maps of the document."""
    present = set()
    for family in ("counters", "gauges", "histograms"):
        table = document.get(family)
        if isinstance(table, dict):
            present.update(table)
    for name in names:
        if name not in present:
            errors.append(f"{path}: required metric {name!r} is missing")


def main(argv):
    args = list(argv[1:])
    required = []
    if "--require" in args:
        at = args.index("--require")
        required = args[at + 1:]
        args = args[:at]
        if not required:
            print("validate_telemetry: --require needs at least one name",
                  file=sys.stderr)
            return 2
    if len(args) not in (2, 3) or args[0] not in ("metrics", "trace"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if required and args[0] != "metrics":
        print("validate_telemetry: --require only applies to metrics",
              file=sys.stderr)
        return 2
    schema_path = args[2] if len(args) == 3 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "telemetry_schema.json")
    try:
        with open(schema_path) as f:
            schema = json.load(f)[args[0]]
        with open(args[1]) as f:
            document = json.load(f)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"validate_telemetry: {e}", file=sys.stderr)
        return 2
    errors = []
    validate(document, schema, "$", errors)
    if isinstance(document, dict) and required:
        check_required_metrics(document, required, "$", errors)
    if errors:
        for e in errors:
            print(f"INVALID {args[1]}: {e}", file=sys.stderr)
        return 1
    suffix = f" (+{len(required)} required metrics)" if required else ""
    print(f"OK {args[1]} conforms to fmtree.{args[0]} schema{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
