#!/usr/bin/env python3
"""Perf-regression gate for the Monte-Carlo engine benchmark.

Compares one or more candidate BENCH_engine.json runs (produced by
bench/run_perf.sh --out run.json) against the checked-in baseline and fails
when the best candidate throughput drops more than --tolerance below the
baseline figure. Several candidate files act as best-of-N: only the fastest
run has to clear the bar, which absorbs most CI-runner noise.

Exit status: 0 = within tolerance, 1 = regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_metric(path: str, model: str, metric: str) -> float:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read benchmark file {path}: {err}")
    for entry in doc.get("models", []):
        if entry.get("model") == model:
            value = entry.get(metric)
            if not isinstance(value, (int, float)) or value <= 0:
                raise SystemExit(
                    f"error: {path}: model '{model}' has no positive '{metric}'")
            return float(value)
    raise SystemExit(f"error: {path}: model '{model}' not found")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_engine.json to compare against")
    parser.add_argument("--model", default="ei_joint",
                        help="model entry to compare (default: ei_joint)")
    parser.add_argument("--metric", default="single_thread_traj_per_sec",
                        help="throughput field (default: single_thread_traj_per_sec)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop below baseline (default: 0.20)")
    parser.add_argument("candidates", nargs="+",
                        help="candidate run JSON files; best of them is used")
    args = parser.parse_args()
    if not 0 <= args.tolerance < 1:
        raise SystemExit("error: --tolerance must lie in [0, 1)")

    baseline = load_metric(args.baseline, args.model, args.metric)
    runs = [(path, load_metric(path, args.model, args.metric))
            for path in args.candidates]
    best_path, best = max(runs, key=lambda item: item[1])
    floor = baseline * (1.0 - args.tolerance)

    print(f"baseline {args.model}.{args.metric}: {baseline:.0f} traj/s "
          f"(floor at -{args.tolerance:.0%}: {floor:.0f})")
    for path, value in runs:
        marker = " <-- best" if path == best_path else ""
        print(f"  {path}: {value:.0f} traj/s ({value / baseline - 1.0:+.1%}){marker}")

    if best < floor:
        print(f"FAIL: best run {best:.0f} traj/s is more than "
              f"{args.tolerance:.0%} below the baseline", file=sys.stderr)
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
