#!/usr/bin/env python3
"""Perf-regression gate for the Monte-Carlo engine benchmark.

Compares one or more candidate BENCH_engine.json runs (produced by
bench/run_perf.sh --out run.json) against the checked-in baseline and fails
when the best candidate throughput drops more than --tolerance below the
baseline figure. Several candidate files act as best-of-N: only the fastest
run has to clear the bar, which absorbs most CI-runner noise.

Beyond the throughput floor the gate also:

 * validates every candidate entry structurally — the batch-engine fields
   must be present, positive, and lane/chunk-invariant, the scalar engine
   must report bitwise equivalence, and a run with parallel_threads <= 1
   must carry parallel_measured=false (a 1-worker run is not a parallel
   measurement and is refused as a parallel comparison metric);
 * prints ns/event and speedup deltas of the best candidate against the
   baseline, so a gate failure comes with per-event attribution;
 * optionally enforces a cross-metric ratio with --min-ratio /
   --baseline-metric (e.g. batch_traj_per_sec >= 2.0 x the baseline's
   single_thread_traj_per_sec — the batch-engine acceptance bar).

Exit status: 0 = within tolerance, 1 = regression or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys

# Per-model fields every candidate run must carry, with sanity predicates.
REQUIRED_FIELDS = {
    "single_thread_traj_per_sec": lambda v, e: isinstance(v, (int, float)) and v > 0,
    "batch_traj_per_sec": lambda v, e: isinstance(v, (int, float)) and v > 0,
    "batch_lane_width": lambda v, e: isinstance(v, int) and v > 0,
    "batch_ns_per_event": lambda v, e: isinstance(v, (int, float)) and v > 0,
    "ns_per_event": lambda v, e: isinstance(v, (int, float)) and v > 0,
    "bitwise_equivalent": lambda v, e: v is True,
    "batch_lane_invariant": lambda v, e: v is True,
    "parallel_threads": lambda v, e: isinstance(v, int) and v >= 1,
    # Honest parallel labeling: one worker must never be presented as a
    # parallel measurement.
    "parallel_measured": lambda v, e: v is (e.get("parallel_threads", 0) > 1),
}

# Fields worth a delta line when comparing best candidate vs baseline.
DELTA_FIELDS = [
    ("single_thread_traj_per_sec", "traj/s", "higher"),
    ("batch_traj_per_sec", "traj/s", "higher"),
    ("ns_per_event", "ns/ev", "lower"),
    ("batch_ns_per_event", "ns/ev", "lower"),
    ("speedup_single_thread", "x", "higher"),
    ("speedup_batch", "x", "higher"),
    ("batch_vs_scalar", "x", "higher"),
]


def load_doc(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"error: cannot read benchmark file {path}: {err}")


def model_entry(doc: dict, path: str, model: str) -> dict:
    models = doc.get("models")
    if not isinstance(models, list):
        raise SystemExit(
            f"error: {path}: no 'models' array — is this a BENCH_engine.json "
            f"produced by bench/run_perf.sh --out? "
            f"(top-level keys: {', '.join(sorted(doc)) or 'none'})")
    for entry in models:
        if entry.get("model") == model:
            return entry
    available = ", ".join(sorted(str(e.get("model")) for e in models)) or "none"
    raise SystemExit(f"error: {path}: model '{model}' not found "
                     f"(models present: {available})")


def metric_value(entry: dict, path: str, model: str, metric: str) -> float:
    if metric not in entry:
        numeric = ", ".join(sorted(
            k for k, v in entry.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)))
        raise SystemExit(
            f"error: {path}: model '{model}' has no field '{metric}' — "
            f"regenerate the file with the current bench/run_perf.sh "
            f"(numeric fields present: {numeric or 'none'})")
    value = entry[metric]
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise SystemExit(
            f"error: {path}: model '{model}' field '{metric}' = {value!r} "
            f"must be a positive number")
    return float(value)


def validate_entry(entry: dict, path: str, model: str) -> list[str]:
    problems = []
    for field, ok in REQUIRED_FIELDS.items():
        if field not in entry:
            problems.append(f"{path}: {model}: missing field '{field}'")
        elif not ok(entry[field], entry):
            problems.append(
                f"{path}: {model}: field '{field}' = {entry[field]!r} fails validation")
    return problems


def print_deltas(baseline: dict, candidate: dict) -> None:
    for field, unit, better in DELTA_FIELDS:
        b, c = baseline.get(field), candidate.get(field)
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)) or b <= 0:
            continue
        rel = c / b - 1.0
        improved = rel >= 0 if better == "higher" else rel <= 0
        print(f"  {field}: {b:.6g} -> {c:.6g} {unit} "
              f"({rel:+.1%}, {'better' if improved else 'worse'})")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_engine.json to compare against")
    parser.add_argument("--model", default="ei_joint",
                        help="model entry to compare (default: ei_joint)")
    parser.add_argument("--metric", default="single_thread_traj_per_sec",
                        help="throughput field (default: single_thread_traj_per_sec)")
    parser.add_argument("--baseline-metric", default=None,
                        help="baseline field to compare against "
                             "(default: same as --metric)")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop below baseline (default: 0.20)")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="require best candidate >= RATIO x baseline metric "
                             "instead of the tolerance floor")
    parser.add_argument("--min-value", type=float, default=None,
                        help="require best candidate >= VALUE outright (machine-"
                             "independent bar, e.g. batch_vs_scalar >= 2.0)")
    parser.add_argument("--no-validate", action="store_true",
                        help="skip structural validation of candidate files "
                             "(for gating runs produced by older harnesses)")
    parser.add_argument("candidates", nargs="+",
                        help="candidate run JSON files; best of them is used")
    args = parser.parse_args()
    if not 0 <= args.tolerance < 1:
        raise SystemExit("error: --tolerance must lie in [0, 1)")
    if args.min_ratio is not None and args.min_ratio <= 0:
        raise SystemExit("error: --min-ratio must be positive")
    baseline_metric = args.baseline_metric or args.metric

    baseline_doc = load_doc(args.baseline)
    baseline_entry = model_entry(baseline_doc, args.baseline, args.model)
    baseline = metric_value(baseline_entry, args.baseline, args.model,
                            baseline_metric)

    runs = []
    problems = []
    for path in args.candidates:
        entry = model_entry(load_doc(path), path, args.model)
        if not args.no_validate:
            problems += validate_entry(entry, path, args.model)
            if args.metric.startswith("parallel") and not entry.get("parallel_measured"):
                problems.append(
                    f"{path}: {args.model}: refusing '{args.metric}' as a gate "
                    f"metric — run used {entry.get('parallel_threads')} worker(s), "
                    f"which is not a parallel measurement")
        runs.append((path, entry,
                     metric_value(entry, path, args.model, args.metric)))

    if problems:
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        return 1

    best_path, best_entry, best = max(runs, key=lambda item: item[2])
    if args.min_value is not None:
        floor = args.min_value
        bar = f">= {args.min_value:g} outright"
    elif args.min_ratio is not None:
        floor = baseline * args.min_ratio
        bar = f"{args.min_ratio:g}x {baseline_metric}"
    else:
        floor = baseline * (1.0 - args.tolerance)
        bar = f"-{args.tolerance:.0%}"

    print(f"baseline {args.model}.{baseline_metric}: {baseline:.0f} "
          f"(floor at {bar}: {floor:.0f})")
    for path, _, value in runs:
        marker = " <-- best" if path == best_path else ""
        print(f"  {path}: {args.metric} = {value:.0f} "
              f"({value / baseline - 1.0:+.1%} vs baseline){marker}")
    print(f"deltas ({best_path} vs {args.baseline}):")
    print_deltas(baseline_entry, best_entry)

    if best < floor:
        print(f"FAIL: best run {best:.0f} is below the bar of {floor:.0f} "
              f"({bar} of baseline {baseline:.0f})", file=sys.stderr)
        return 1
    print("OK: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
