#!/usr/bin/env python3
"""Validate an fmtree.request/v1 document against tools/request_schema.json.

Usage: validate_request.py <request.json|-> [schema.json]

Self-contained interpreter for the small JSON-Schema subset the request
schema uses (type / const / enum / required / properties /
additionalProperties: false / items / oneOf / anyOf / minimum / maximum /
minLength / minItems), so CI needs nothing beyond the Python standard
library. The
custom "format": "double" keyword accepts either a JSON number or a string
that parses as a double — including the canonical C99 hexfloat spelling
("0x1.8p+1") `fmtree sweep --emit-request` emits for bit-exact round-trips.

Reads the document from stdin when the file argument is "-", so the CLI can
be piped straight in:

    fmtree sweep model.fmt --emit-request | validate_request.py -
    fmtree fleet model.fmt --joints 100 --emit-request | validate_request.py -

Exit code 0 = valid, 1 = invalid, 2 = usage/IO error.
"""

import json
import os
import sys


def is_double(value):
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    if isinstance(value, str):
        try:
            float(value)
            return True
        except ValueError:
            pass
        try:
            float.fromhex(value)
            return True
        except ValueError:
            return False
    return False


def type_ok(value, expected):
    types = expected if isinstance(expected, list) else [expected]
    for t in types:
        if t == "object" and isinstance(value, dict):
            return True
        if t == "array" and isinstance(value, list):
            return True
        if t == "string" and isinstance(value, str):
            return True
        # bool is an int subclass in Python; JSON booleans are never numbers.
        if t == "integer" and isinstance(value, int) and not isinstance(value, bool):
            return True
        if (t == "number" and isinstance(value, (int, float))
                and not isinstance(value, bool)):
            return True
        if t == "null" and value is None:
            return True
        if t == "boolean" and isinstance(value, bool):
            return True
    return False


def validate(value, schema, path, errors):
    if "type" in schema and not type_ok(value, schema["type"]):
        errors.append(f"{path}: expected type {schema['type']}, "
                      f"got {type(value).__name__}")
        return
    if schema.get("format") == "double" and not is_double(value):
        errors.append(f"{path}: expected a number or a numeric/hexfloat "
                      f"string, got {value!r}")
        return
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} is not one of {schema['enum']}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")
    if isinstance(value, str) and len(value) < schema.get("minLength", 0):
        errors.append(f"{path}: shorter than minLength {schema['minLength']}")
    if "oneOf" in schema:
        matched = 0
        for sub in schema["oneOf"]:
            trial = []
            validate(value, sub, path, trial)
            matched += not trial
        if matched != 1:
            errors.append(f"{path}: matches {matched} of the oneOf "
                          f"alternatives, expected exactly 1")
    if "anyOf" in schema:
        matched = 0
        for sub in schema["anyOf"]:
            trial = []
            validate(value, sub, path, trial)
            matched += not trial
        if matched == 0:
            errors.append(f"{path}: matches none of the anyOf alternatives")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unknown key {key!r}")
    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            errors.append(f"{path}: fewer than minItems {schema['minItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    args = argv[1:]
    if len(args) not in (1, 2):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema_path = args[1] if len(args) == 2 else os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "request_schema.json")
    name = "<stdin>" if args[0] == "-" else args[0]
    try:
        with open(schema_path) as f:
            schema = json.load(f)["request"]
        if args[0] == "-":
            document = json.load(sys.stdin)
        else:
            with open(args[0]) as f:
                document = json.load(f)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"validate_request: {e}", file=sys.stderr)
        return 2
    errors = []
    validate(document, schema, "$", errors)
    if errors:
        for e in errors:
            print(f"INVALID {name}: {e}", file=sys.stderr)
        return 1
    print(f"OK {name} conforms to the fmtree.request/v1 schema")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
